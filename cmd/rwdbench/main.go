// Command rwdbench regenerates the tables and figures of "Towards Theory
// for Real-World Data" (Martens, PODS 2022) from synthetic corpora pushed
// through the real analysis pipeline.
//
// Usage:
//
//	rwdbench -experiment all [-scale 10000] [-seed 1]
//	rwdbench -experiment table1|table2|table3|table4|table5|table6|table7|table8
//	rwdbench -experiment figure3|xmlquality|dtdcorpus|xsdtypes|jsonschema|xpath|rdfstats|welldesigned|tractability
//
// -scale is the corpus scale divisor for the log-derived experiments:
// 1000 generates 1:1000 of the paper's 558M queries (≈ 558k), the default
// 10000 generates ≈ 56k.
//
// -serve-load switches to the service load generator: sustained, seeded,
// concurrent mixed traffic against rwdserve, distilled into a
// BENCH_serve.json baseline (p50/p99 latency, RPS, cache hit rate,
// timeout counts, span cost totals, and the trace flight recorder's
// recorded/evicted accounting — the recorder is always on, so the
// baseline's RPS already prices in its overhead):
//
//	rwdbench -serve-load [-serve-url http://127.0.0.1:8080] \
//	         [-serve-duration 10s] [-serve-concurrency 8] \
//	         [-serve-out BENCH_serve.json] [-seed 1]
//
// With an empty -serve-url an in-process rwdserve is started on a
// loopback listener, so a baseline never needs external setup. The
// baseline also carries the server's workload-profile block (per-op
// server-side quantiles, error rates, and fitted cost models from
// GET /v1/stats).
//
// -profile-check replays the same load and compares the fresh profile
// block against the committed baseline, exiting 1 when any op drifted
// beyond tolerance (default: p50/p99 within 10x either way, error and
// timeout rates within 0.25 absolute, rows under 50 requests ignored):
//
//	rwdbench -profile-check [-profile-baseline BENCH_serve.json] \
//	         [-profile-factor 10] [-serve-url ...] [-serve-duration 10s] \
//	         [-serve-concurrency 8] [-seed 1]
//
// -automata benchmarks the antichain containment engine against the
// retained classic eager engine on seeded instance families and writes
// a BENCH_automata.json baseline (wall time plus the span cost counters
// states_expanded / product_states / antichain_pruned per engine):
//
//	rwdbench -automata [-automata-out BENCH_automata.json] \
//	         [-automata-blowup-k 14] [-automata-hard-k 10] \
//	         [-automata-easy-trials 50] [-seed 1]
//
// -store benchmarks the persistent corpus store (internal/store) on a
// seeded synthetic graph — ingest throughput, range-scan throughput,
// reopen latency, bytes per triple — and writes a BENCH_store.json
// baseline:
//
//	rwdbench -store [-store-out BENCH_store.json] [-store-triples 20000] [-seed 1]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/autobench"
	"repro/internal/core"
	"repro/internal/edtd"
	"repro/internal/jsonschema"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/schemastudy"
	"repro/internal/serveload"
	"repro/internal/service"
	"repro/internal/storebench"
	"repro/internal/xmllite"
	"repro/internal/xpath"
)

func main() {
	experiment := flag.String("experiment", "all", "which table/figure to regenerate")
	scale := flag.Int("scale", 10000, "corpus scale divisor for log experiments")
	seed := flag.Int64("seed", 1, "generator seed")
	graphScale := flag.Float64("graphscale", 0.2, "graph size factor for Table 1")
	workers := flag.Int("workers", 0, "analysis workers for the log pipeline; 0 = one per CPU, 1 = sequential")
	trace := flag.String("trace", "", "dump the log-pipeline span tree after the run: '-' writes stderr, anything else is a file path; empty disables")
	serveLoad := flag.Bool("serve-load", false, "drive a seeded load run against rwdserve and write a BENCH_serve.json baseline (skips the paper experiments)")
	serveURL := flag.String("serve-url", "", "base URL of a running rwdserve for -serve-load; empty starts one in-process")
	serveDuration := flag.Duration("serve-duration", 10*time.Second, "sustained-load window for -serve-load")
	serveConcurrency := flag.Int("serve-concurrency", 8, "concurrent load workers for -serve-load")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "where -serve-load writes the baseline report")
	profileCheck := flag.Bool("profile-check", false, "replay the serve load and gate this run's workload profile against a committed baseline (skips the paper experiments)")
	profileBaseline := flag.String("profile-baseline", "BENCH_serve.json", "baseline report for -profile-check")
	profileFactor := flag.Float64("profile-factor", 0, "latency-ratio tolerance for -profile-check; <= 1 means the default 10x")
	profileMinReq := flag.Uint64("profile-min-requests", 0, "skip profile rows with fewer requests; 0 means the default 50")
	profileRateDelta := flag.Float64("profile-rate-delta", 0, "absolute error/timeout rate drift tolerance; 0 means the default 0.25")
	autoBench := flag.Bool("automata", false, "benchmark the antichain vs classic containment engines and write a BENCH_automata.json baseline (skips the paper experiments)")
	autoOut := flag.String("automata-out", "BENCH_automata.json", "where -automata writes the baseline report")
	autoBlowupK := flag.Int("automata-blowup-k", 14, "k of the adversarial-blowup family for -automata")
	autoHardK := flag.Int("automata-hard-k", 10, "k of the antichain-hard family for -automata")
	autoEasyTrials := flag.Int("automata-easy-trials", 50, "easy-random instance count for -automata")
	storeBench := flag.Bool("store", false, "benchmark the persistent corpus store and write a BENCH_store.json baseline (skips the paper experiments)")
	storeOut := flag.String("store-out", "BENCH_store.json", "where -store writes the baseline report")
	storeTriples := flag.Int("store-triples", 20000, "generated graph size for -store")
	flag.Parse()

	if *storeBench {
		if err := runStoreBench(*seed, *storeTriples, *storeOut); err != nil {
			fmt.Fprintln(os.Stderr, "rwdbench: store:", err)
			os.Exit(1)
		}
		return
	}

	if *autoBench {
		if err := runAutomataBench(*seed, *autoEasyTrials, *autoBlowupK, *autoHardK, *autoOut); err != nil {
			fmt.Fprintln(os.Stderr, "rwdbench: automata:", err)
			os.Exit(1)
		}
		return
	}
	if *serveLoad {
		if err := runServeLoad(*serveURL, *seed, *serveDuration, *serveConcurrency, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "rwdbench: serve-load:", err)
			os.Exit(1)
		}
		return
	}
	if *profileCheck {
		err := runProfileCheck(*serveURL, *seed, *serveDuration, *serveConcurrency,
			*profileBaseline, serveload.ProfileTolerance{
				Factor:      *profileFactor,
				MinRequests: *profileMinReq,
				RateDelta:   *profileRateDelta,
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rwdbench: profile-check:", err)
			os.Exit(1)
		}
		return
	}

	needLogs := map[string]bool{
		"all": true, "table2": true, "table3": true, "table4": true,
		"table5": true, "table6": true, "table7": true, "table8": true,
		"figure3": true, "welldesigned": true, "tractability": true,
	}
	var reports []*core.SourceReport
	if needLogs[*experiment] {
		ctx := context.Background()
		var root *obs.Span
		if *trace != "" {
			ctx, root = (&obs.Tracer{}).StartRoot(ctx, "rwdbench.logstudy")
		}
		cfg := core.Config{Workers: *workers, ScaleDiv: *scale, Seed: *seed}
		if *workers == 1 {
			fmt.Fprintf(os.Stderr, "generating and analyzing log corpus at scale 1:%d (sequential) …\n", *scale)
			reports = core.RunLogStudySequentialCtx(ctx, cfg)
		} else {
			n := *workers
			if n <= 0 {
				n = runtime.GOMAXPROCS(0)
			}
			fmt.Fprintf(os.Stderr, "generating and analyzing log corpus at scale 1:%d (%d workers) …\n", *scale, n)
			reports = core.RunLogStudyParallelCtx(ctx, cfg)
		}
		if root != nil {
			root.Finish()
			dumpTrace(*trace, root.Tree())
		}
	}
	dbp, wiki := core.GroupReports(reports)

	w := os.Stdout
	failed := false
	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "render:", err)
			failed = true
		}
	}
	run := func(name string, f func()) {
		if *experiment == "all" || *experiment == name {
			fmt.Fprintf(w, "\n==== %s ====\n", strings.ToUpper(name))
			f()
		}
	}
	run("table1", func() { check(core.RenderTable1(w, *seed, *graphScale)) })
	run("table2", func() { check(core.RenderTable2(w, reports)) })
	run("figure3", func() { check(core.RenderFigure3(w, reports)) })
	run("table3", func() { check(core.RenderTable3(w, dbp)); fmt.Fprintln(w); check(core.RenderTable3(w, wiki)) })
	run("table4", func() { check(core.RenderOperatorSets(w, dbp, core.Table4Rows)) })
	run("table5", func() { check(core.RenderOperatorSets(w, wiki, core.Table5Rows)) })
	run("table6", func() { check(core.RenderTable6(w, dbp)) })
	run("table7", func() { check(core.RenderTable7(w, dbp)) })
	run("table8", func() { check(core.RenderTable8(w, wiki)) })
	run("welldesigned", func() { check(core.RenderSection94(w, dbp)); check(core.RenderSection94(w, wiki)) })
	run("tractability", func() { check(core.RenderSection96(w, wiki)) })
	run("xmlquality", func() { runXMLQuality(*seed) })
	run("dtdcorpus", func() { runDTDCorpus(*seed) })
	run("xsdtypes", func() { runXSDTypes(*seed) })
	run("jsonschema", func() { runJSONSchema(*seed) })
	run("xpath", func() { runXPath(*seed) })
	run("rdfstats", func() { runRDFStats(*seed) })
	if failed {
		os.Exit(1)
	}
}

func runXMLQuality(seed int64) {
	g := xmllite.DefaultCorpusGen()
	r := rand.New(rand.NewSource(seed))
	docs := make([]string, 10000)
	for i := range docs {
		docs[i] = g.Document(r)
	}
	res := xmllite.RunStudy(docs)
	fmt.Printf("documents: %d\nwell-formed: %d (%.1f%%; paper: 85%%)\n",
		res.Total, res.WellFormed, 100*res.WellFormedRate())
	fmt.Printf("top-3 error categories cover %.1f%% of errors (paper: 79.9%%)\n", 100*res.TopThreeRate)
	for cat, n := range res.ByCategory {
		fmt.Printf("  %-24s %d\n", cat.String(), n)
	}
}

func runDTDCorpus(seed int64) {
	g := schemastudy.DefaultDTDGen()
	r := rand.New(rand.NewSource(seed))
	rep := schemastudy.AnalyzeDTDs(g.Corpus(r, 1000))
	fmt.Printf("DTDs: %d; recursive: %d (%.1f%%; Choi: 35/60 = 58%%)\n",
		rep.Total, rep.Recursive, 100*float64(rep.Recursive)/float64(rep.Total))
	fmt.Printf("non-recursive max document depths: %s (Choi: up to 20)\n",
		schemastudy.DescribeDepths(rep.MaxDepths))
	fmt.Printf("expressions: %d; CHAREs: %.1f%% (paper: >92%%); SOREs: %.1f%% (paper: >99%%)\n",
		rep.Expressions, 100*rep.CHARERate(), 100*rep.SORERate())
	fmt.Printf("deterministic: %.1f%%; max parse depth: %d (Choi: 1..9); ANY uses: %d\n",
		100*float64(rep.Deterministic)/float64(rep.Expressions), rep.MaxParseDepth, rep.ANYUses)
}

func runXSDTypes(seed int64) {
	g := schemastudy.DefaultXSDGen()
	r := rand.New(rand.NewSource(seed))
	xs := make([]*edtd.EDTD, 30)
	for i := range xs {
		xs[i] = g.Schema(r)
	}
	rep := schemastudy.AnalyzeXSDs(xs)
	fmt.Printf("XSDs: %d; structurally DTD-expressible: %d (Bex et al.: 25/30)\n", rep.Total, rep.DTDExpressible)
	fmt.Printf("parent/grandparent-typed: %d; single-type: %d\n", rep.DependencyDepth12, rep.SingleType)
}

func runJSONSchema(seed int64) {
	g := schemastudy.DefaultJSONSchemaGen()
	r := rand.New(rand.NewSource(seed))
	rep := jsonschema.RunStudy(g.Corpus(r, 1000))
	fmt.Printf("schemas: %d; recursive: %d (Maiwald: 26/159)\n", rep.Total, rep.Recursive)
	fmt.Printf("non-recursive depths: %s (paper: 3-43, avg 11)\n", schemastudy.DescribeDepths(rep.Depths))
	fmt.Printf("negation: %d (%.1f%%; Baazizi: 2.6%%); schema-full: %d (Maiwald: 8/159)\n",
		rep.NegationUse, 100*float64(rep.NegationUse)/float64(rep.Total), rep.SchemaFull)
}

func runXPath(seed int64) {
	g := xpath.DefaultGen()
	r := rand.New(rand.NewSource(seed))
	res := xpath.RunStudy(g.Corpus(r, 20000))
	fmt.Printf("queries: %d; median size: %d (Baelde: majority ≤ 13); max size: %d; power-law alpha: %.2f\n",
		res.Total, res.SizeQuantile(0.5), res.SizeQuantile(1.0), res.PowerLawAlpha())
	fmt.Printf("axis users (child %d, attribute %d, descendant-or-self %d, ancestor %d)\n",
		res.AxisUse[xpath.AxisChild], res.AxisUse[xpath.AxisAttribute],
		res.AxisUse[xpath.AxisDescendantOrSelf], res.AxisUse[xpath.AxisAncestor])
	fmt.Printf("fragments: positive %.1f%%, core %.1f%%, downward %.1f%%, tree patterns %.1f%% (Pasqua: >90%%)\n",
		pctOf(res.Positive, res.Total), pctOf(res.Core, res.Total),
		pctOf(res.Downward, res.Total), pctOf(res.TreePatterns, res.Total))
}

func runRDFStats(seed int64) {
	g := rdf.DefaultGen()
	r := rand.New(rand.NewSource(seed))
	st := rdf.ComputeStats(g.Graph(r, 20000))
	fmt.Printf("triples: %d, subjects: %d, predicates: %d, objects: %d\n",
		st.Triples, st.Subjects, st.Predicates, st.Objects)
	fmt.Printf("in-degree: max %d, mean %.2f, alpha %.2f (power law; Bachlechner/Strang: max 7739 vs mean 9.56)\n",
		st.InDegree.Max, st.InDegree.Mean, st.InDegree.Alpha)
	fmt.Printf("predicate lists: %d distinct; %.1f%% of subjects share a common list (Fernandez: ≈99%%)\n",
		st.PredicateLists, 100*st.SharedListSubjectRate)
	fmt.Printf("objects per (s,p): %.3f (≈1); subjects per (p,o): %.2f ± %.2f (skewed)\n",
		st.MeanObjectsPerSP, st.MeanSubjectsPerPO, st.StdDevSubjectsPerPO)
	fmt.Printf("|P∩S|/|P∪S| = %.2g, |P∩O|/|P∪O| = %.2g (paper: 0 or 10⁻⁷..10⁻³)\n",
		st.PSOverlap, st.POOverlap)
}

// driveLoad runs the seeded load against url; with an empty url it
// starts an in-process rwdserve on a loopback port first, so both
// -serve-load and -profile-check are self-contained.
func driveLoad(url string, seed int64, duration time.Duration, concurrency int) (*serveload.Report, error) {
	if url == "" {
		srv := service.New(service.Config{Logger: log.New(io.Discard, "", 0)})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		shutdown := make(chan struct{})
		served := make(chan error, 1)
		go func() { served <- srv.Serve(l, shutdown, 5*time.Second) }()
		defer func() {
			close(shutdown)
			<-served
		}()
		url = "http://" + l.Addr().String()
		fmt.Fprintf(os.Stderr, "rwdbench: in-process rwdserve on %s\n", url)
	}
	fmt.Fprintf(os.Stderr, "rwdbench: driving %s for %s (%d workers, seed %d) …\n",
		url, duration, concurrency, seed)
	return serveload.Run(serveload.Config{
		BaseURL:     url,
		Seed:        seed,
		Duration:    duration,
		Concurrency: concurrency,
	})
}

// runServeLoad drives the load generator and writes the baseline.
func runServeLoad(url string, seed int64, duration time.Duration, concurrency int, out string) error {
	rep, err := driveLoad(url, seed, duration, concurrency)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := serveload.WriteJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"rwdbench: %d requests in %.1fs — %.0f rps, p50 %.2fms, p99 %.2fms, cache hit rate %.1f%%, %d timeouts -> %s\n",
		rep.Requests, rep.DurationSeconds, rep.RPS,
		rep.LatencyMS.P50, rep.LatencyMS.P99, 100*rep.Cache.HitRate, rep.Timeouts, out)
	fmt.Fprintf(os.Stderr,
		"rwdbench: flight recorder: %.0f traces recorded (%.0f retained, %.0f evicted, %.0f dropped)\n",
		rep.Recorder.Recorded, rep.Recorder.Retained, rep.Recorder.Evicted, rep.Recorder.Dropped)
	fmt.Fprintf(os.Stderr, "rwdbench: workload profile: %d (op, engine) rows captured\n", len(rep.Profile))
	return nil
}

// runProfileCheck replays the serve load and gates the fresh workload
// profile against a committed baseline: exit 1 on any drift beyond
// tolerance. Baselines from before the profile engine (no profile
// block) pass with a warning so the gate can land before every
// baseline is regenerated.
func runProfileCheck(url string, seed int64, duration time.Duration, concurrency int,
	baselinePath string, tol serveload.ProfileTolerance) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	baseline := &serveload.Report{}
	if err := json.Unmarshal(raw, baseline); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if len(baseline.Profile) == 0 {
		fmt.Fprintf(os.Stderr, "rwdbench: %s has no profile block (regenerate with -serve-load); nothing to gate\n", baselinePath)
		return nil
	}
	rep, err := driveLoad(url, seed, duration, concurrency)
	if err != nil {
		return err
	}
	regressions := serveload.CompareProfiles(baseline, rep, tol)
	if len(regressions) == 0 {
		fmt.Fprintf(os.Stderr, "rwdbench: profile-check: %d baseline rows within tolerance of %s\n",
			len(baseline.Profile), baselinePath)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "rwdbench: profile regression:", r)
	}
	return fmt.Errorf("%d profile regression(s) against %s", len(regressions), baselinePath)
}

// runAutomataBench runs the engine comparison families and writes the
// committed baseline.
// runStoreBench benchmarks the persistent corpus store in a throwaway
// directory and writes the BENCH_store.json baseline.
func runStoreBench(seed int64, triples int, out string) error {
	dir, err := os.MkdirTemp("", "rwdbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Fprintf(os.Stderr, "rwdbench: benchmarking store (seed %d, %d triples) …\n", seed, triples)
	rep, err := storebench.Run(context.Background(), storebench.Config{
		Dir:     dir,
		Seed:    seed,
		Triples: triples,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := storebench.WriteJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"rwdbench: ingest %.0f triples/s | scan %.0f rows/s | reopen %.1fms | %.1f bytes/triple\n",
		rep.IngestTriplesPerSec, rep.ScanRowsPerSec, rep.ReopenMS, rep.BytesPerTriple)
	fmt.Fprintf(os.Stderr, "rwdbench: baseline -> %s\n", out)
	return nil
}

func runAutomataBench(seed int64, easyTrials, blowupK, hardK int, out string) error {
	fmt.Fprintf(os.Stderr, "rwdbench: comparing containment engines (seed %d, blowup k=%d, hard k=%d, %d easy pairs) …\n",
		seed, blowupK, hardK, easyTrials)
	rep, err := autobench.Run(autobench.Config{
		Seed:       seed,
		EasyTrials: easyTrials,
		BlowupK:    blowupK,
		HardK:      hardK,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := autobench.WriteJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, fam := range rep.Families {
		fmt.Fprintf(os.Stderr,
			"rwdbench: %-20s antichain %8d states %8.1fms | classic %8d states %8.1fms | ratio %.1fx\n",
			fam.Family, fam.Antichain.StatesExpanded, fam.Antichain.WallMS,
			fam.Classic.StatesExpanded, fam.Classic.WallMS, fam.StatesExpandedRatio)
	}
	fmt.Fprintf(os.Stderr, "rwdbench: baseline -> %s\n", out)
	return nil
}

func pctOf(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// dumpTrace renders the span tree to stderr ("-") or the given file.
func dumpTrace(dest string, n *obs.Node) {
	w := io.Writer(os.Stderr)
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteTree(w, n); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
	}
}
