// Package textio provides the shared line-oriented input helpers used by
// the command-line tools (and anything else that reads one-item-per-line
// corpora): bounded line reading with a precise, line-numbered error when
// an input line exceeds the limit, instead of bufio.Scanner's bare
// "token too long".
package textio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxLineBytes is the per-line size limit of ReadLines. It is
// deliberately far above bufio.Scanner's 64 KiB default (and the 1 MiB cap
// the CLIs historically hard-coded): real query logs contain
// machine-generated lines of several MiB.
const DefaultMaxLineBytes = 16 << 20

// LineTooLongError reports an input line exceeding the configured limit.
type LineTooLongError struct {
	Line  int // 1-based number of the offending line
	Limit int // the per-line byte limit that was exceeded
}

func (e *LineTooLongError) Error() string {
	return fmt.Sprintf("textio: line %d exceeds the %d-byte line limit", e.Line, e.Limit)
}

// ReadLines reads r to EOF and returns its non-empty lines, enforcing
// DefaultMaxLineBytes per line.
func ReadLines(r io.Reader) ([]string, error) {
	return ReadLinesLimit(r, DefaultMaxLineBytes)
}

// ReadLinesLimit is ReadLines with an explicit per-line byte limit
// (maxLine <= 0 means DefaultMaxLineBytes). Over-long input fails with a
// *LineTooLongError carrying the 1-based line number; lines read before
// the failure are returned alongside the error.
func ReadLinesLimit(r io.Reader, maxLine int) ([]string, error) {
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}
	sc := bufio.NewScanner(r)
	// the scanner's effective cap is max(cap(buf), maxLine), so the
	// initial buffer must not exceed the requested limit
	sc.Buffer(make([]byte, min(64*1024, maxLine)), maxLine)
	var out []string
	n := 0
	for sc.Scan() {
		n++
		if line := sc.Text(); line != "" {
			out = append(out, line)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return out, &LineTooLongError{Line: n + 1, Limit: maxLine}
		}
		return out, err
	}
	return out, nil
}
