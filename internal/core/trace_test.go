package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestAnalyzeQueriesCtxTracedIdentical pins that tracing is purely
// observational: the traced sharded report equals the untraced sequential
// one, and the span tree carries the per-shard and merge accounting.
func TestAnalyzeQueriesCtxTracedIdentical(t *testing.T) {
	queries := []string{
		"SELECT ?x WHERE { ?x <p> ?y }",
		"SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z }",
		"SELECT * WHERE { ?a <p> ?b }",
		"SELECT ?x WHERE { ?x <p> ?y }",
		"not a query",
	}
	want := AnalyzeQueries("t", queries, 1)

	tr := &obs.Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "test")
	got := AnalyzeQueriesCtx(ctx, "t", queries, 3)
	root.Finish()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("traced sharded report differs from sequential:\ngot  %+v\nwant %+v", got, want)
	}

	tree := root.Tree()
	var shards, merges int
	var ingested int64
	for _, c := range tree.Children {
		switch c.Name {
		case "core.shard":
			shards++
			ingested += c.Counters["queries_ingested"]
		case "core.merge":
			merges++
			if c.Counters["shards"] != 3 {
				t.Fatalf("merge shards counter = %d, want 3", c.Counters["shards"])
			}
		}
	}
	if shards != 3 || merges != 1 {
		t.Fatalf("span tree has %d shard and %d merge spans, want 3 and 1: %+v", shards, merges, tree.Children)
	}
	if ingested != int64(len(queries)) {
		t.Fatalf("queries_ingested sums to %d, want %d", ingested, len(queries))
	}
}

// TestRunLogStudyParallelCtxSpans drives a tiny traced study and checks
// each source span carries generate/shard/merge children.
func TestRunLogStudyParallelCtxSpans(t *testing.T) {
	cfg := Config{Workers: 2, ScaleDiv: 2_000_000}
	tr := &obs.Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "study")
	reports := RunLogStudyParallelCtx(ctx, cfg)
	root.Finish()
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	tree := root.Tree()
	if len(tree.Children) != len(reports) {
		t.Fatalf("got %d source spans, want %d", len(tree.Children), len(reports))
	}
	for _, src := range tree.Children {
		if src.Name != "core.source" {
			t.Fatalf("unexpected child %q", src.Name)
		}
		kinds := map[string]int{}
		for _, c := range src.Children {
			kinds[c.Name]++
		}
		if kinds["core.generate"] != 1 || kinds["core.merge"] != 1 || kinds["core.shard"] != 2 {
			t.Fatalf("source %s children = %v, want 1 generate, 2 shards, 1 merge", src.Attrs["source"], kinds)
		}
	}
}
