package jsonschema

import (
	"testing"

	"repro/internal/jsonlite"
	"repro/internal/tree"
)

// personsSchema describes the Figure 1b JSON document.
const personsSchema = `{
  "type": "object",
  "properties": {
    "persons": {
      "type": "array",
      "items": {
        "type": "object",
        "properties": {
          "name": {"type": "string"},
          "birthplace": {
            "type": "object",
            "properties": {
              "city": {"type": "string"},
              "state": {"type": "string"},
              "country": {"type": "string"}
            },
            "required": ["city", "state"]
          }
        },
        "required": ["name", "birthplace"]
      }
    }
  },
  "required": ["persons"]
}`

func TestValidateFigure1(t *testing.T) {
	s := MustParse(personsSchema)
	if err := s.Validate(jsonlite.Figure1JSON); err != nil {
		t.Fatalf("Figure 1b JSON should validate: %v", err)
	}
	bad := `{"persons": [{"name": "X", "birthplace": {"city": "Y"}}]}`
	if err := s.Validate(bad); err == nil {
		t.Error("missing state should fail")
	}
	if err := s.Validate(`{"people": []}`); err == nil {
		t.Error("missing persons should fail")
	}
}

func TestTypeAssertions(t *testing.T) {
	cases := []struct {
		schema, doc string
		ok          bool
	}{
		{`{"type": "integer"}`, `3`, true},
		{`{"type": "integer"}`, `3.5`, false},
		{`{"type": "number"}`, `3.5`, true},
		{`{"type": "string"}`, `"x"`, true},
		{`{"type": "string"}`, `3`, false},
		{`{"type": "boolean"}`, `true`, true},
		{`{"type": "null"}`, `null`, true},
		{`{"type": "array", "items": {"type": "integer"}}`, `[1,2,3]`, true},
		{`{"type": "array", "items": {"type": "integer"}}`, `[1,"x"]`, false},
		{`{"enum": [1, "a"]}`, `"a"`, true},
		{`{"enum": [1, "a"]}`, `2`, false},
		{`{"const": 5}`, `5`, true},
		{`true`, `{"anything": 1}`, true},
		{`false`, `1`, false},
	}
	for _, c := range cases {
		err := MustParse(c.schema).Validate(c.doc)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%s, %s): err=%v, want ok=%v", c.schema, c.doc, err, c.ok)
		}
	}
}

func TestLogicalCombinators(t *testing.T) {
	// Baazizi et al.: implication x ⇒ y encoded as ¬x ∨ y (anyOf with not).
	implication := `{
	  "anyOf": [
	    {"not": {"required": ["x"]}},
	    {"required": ["y"]}
	  ]
	}`
	s := MustParse(implication)
	if err := s.Validate(`{"x": 1, "y": 2}`); err != nil {
		t.Error("x∧y should satisfy x⇒y")
	}
	if err := s.Validate(`{"z": 1}`); err != nil {
		t.Error("¬x should satisfy x⇒y")
	}
	if err := s.Validate(`{"x": 1}`); err == nil {
		t.Error("x∧¬y should violate x⇒y")
	}
	oneOf := MustParse(`{"oneOf": [{"type": "string"}, {"type": "integer"}]}`)
	if err := oneOf.Validate(`"a"`); err != nil {
		t.Error("string satisfies oneOf")
	}
	if err := oneOf.Validate(`[1]`); err == nil {
		t.Error("array violates oneOf")
	}
	allOf := MustParse(`{"allOf": [{"required": ["a"]}, {"required": ["b"]}]}`)
	if err := allOf.Validate(`{"a":1,"b":2}`); err != nil {
		t.Error("allOf failed")
	}
	if err := allOf.Validate(`{"a":1}`); err == nil {
		t.Error("allOf should fail")
	}
}

func TestSchemaFullMode(t *testing.T) {
	// Maiwald et al.: schema-full = additionalProperties: false.
	full := MustParse(`{"type":"object","properties":{"a":{}},"additionalProperties":false}`)
	if err := full.Validate(`{"a":1}`); err != nil {
		t.Error("declared property rejected")
	}
	if err := full.Validate(`{"a":1,"b":2}`); err == nil {
		t.Error("extra property accepted in schema-full mode")
	}
	if !full.IsSchemaFull() {
		t.Error("IsSchemaFull = false")
	}
	mixed := MustParse(`{"type":"object","properties":{"a":{}}}`)
	if err := mixed.Validate(`{"a":1,"b":2}`); err != nil {
		t.Error("schema-mixed must allow extra properties")
	}
	if mixed.IsSchemaFull() {
		t.Error("IsSchemaFull = true for mixed schema")
	}
}

func TestRecursionAndDepth(t *testing.T) {
	recursive := MustParse(`{
	  "$ref": "#/definitions/node",
	  "definitions": {
	    "node": {
	      "type": "object",
	      "properties": {"children": {"type": "array", "items": {"$ref": "#/definitions/node"}}}
	    }
	  }
	}`)
	if !recursive.IsRecursive() {
		t.Error("tree schema should be recursive")
	}
	if _, ok := recursive.MaxNestingDepth(); ok {
		t.Error("recursive schema has unbounded depth")
	}
	if err := recursive.Validate(`{"children":[{"children":[]}]}`); err != nil {
		t.Errorf("recursive schema validation: %v", err)
	}

	flat := MustParse(personsSchema)
	if flat.IsRecursive() {
		t.Error("persons schema is not recursive")
	}
	d, ok := flat.MaxNestingDepth()
	if !ok || d != 5 {
		// root object → persons array → person object → birthplace object
		// → scalar leaf (city)
		t.Errorf("MaxNestingDepth = %d, %v; want 5", d, ok)
	}
}

func TestUsesNegation(t *testing.T) {
	if MustParse(personsSchema).UsesNegation() {
		t.Error("persons schema uses no negation")
	}
	forbidden := MustParse(`{"not": {"required": ["password"]}}`)
	if !forbidden.UsesNegation() {
		t.Error("negation not detected")
	}
	if err := forbidden.Validate(`{"user":"x"}`); err != nil {
		t.Error("document without password should pass")
	}
	if err := forbidden.Validate(`{"password":"x"}`); err == nil {
		t.Error("forbidden keyword present")
	}
}

func TestRunStudy(t *testing.T) {
	docs := []string{
		personsSchema,
		`{"not": {"required": ["x"]}}`,
		`{"type":"object","properties":{"a":{}},"additionalProperties":false}`,
		`{"$ref":"#/definitions/n","definitions":{"n":{"items":{"$ref":"#/definitions/n"},"type":"array"}}}`,
		`not even json`,
	}
	res := RunStudy(docs)
	if res.Total != 4 {
		t.Errorf("Total = %d, want 4 (one unparsable)", res.Total)
	}
	if res.Recursive != 1 || res.NegationUse != 1 || res.SchemaFull != 1 {
		t.Errorf("study = %+v", res)
	}
	if len(res.Depths) != 3 {
		t.Errorf("depths = %v", res.Depths)
	}
}

func TestJSONLiteTreeIntegration(t *testing.T) {
	tr := jsonlite.MustParse(jsonlite.Figure1JSON, jsonlite.Options{ItemLabel: "person"})
	want := tree.MustParse("$(persons(person(name, birthplace(city, state, country)), person(name, birthplace(city, state))))")
	if !tr.Equal(want) {
		t.Errorf("tree = %v\nwant %v", tr, want)
	}
}

func TestContainment(t *testing.T) {
	narrow := MustParse(`{"type":"object","properties":{"a":{"type":"integer"}},"required":["a"]}`)
	wide := MustParse(`{"type":"object","required":["a"]}`)
	if v, _ := Contains(narrow, wide, 50, 1); v != Contained {
		t.Errorf("narrow ⊆ wide: %v", v)
	}
	// the other direction must be refuted with a witness
	v, witness := Contains(wide, narrow, 200, 1)
	if v != NotContained {
		t.Errorf("wide ⊆ narrow should be refuted, got %v", v)
	}
	if witness == "" {
		t.Error("refutation must carry a witness")
	}
	// witness really separates the schemas
	if err := wide.Validate(witness); err != nil {
		t.Errorf("witness %s not valid for the left schema: %v", witness, err)
	}
	if err := narrow.Validate(witness); err == nil {
		t.Errorf("witness %s should violate the right schema", witness)
	}
}

func TestContainmentEnumAndTypes(t *testing.T) {
	small := MustParse(`{"enum":[1,2]}`)
	big := MustParse(`{"enum":[1,2,3]}`)
	if v, _ := Contains(small, big, 50, 2); v != Contained {
		t.Errorf("enum subset: %v", v)
	}
	if v, _ := Contains(big, small, 200, 2); v != NotContained {
		t.Errorf("enum superset: %v", v)
	}
	intNum := MustParse(`{"type":"integer"}`)
	num := MustParse(`{"type":"number"}`)
	if v, _ := Contains(intNum, num, 50, 3); v != Contained {
		t.Errorf("integer ⊆ number: %v", v)
	}
}

func TestContainmentSchemaFull(t *testing.T) {
	full := MustParse(`{"type":"object","properties":{"a":{}},"additionalProperties":false}`)
	mixed := MustParse(`{"type":"object","properties":{"a":{}}}`)
	if v, _ := Contains(full, mixed, 50, 4); v != Contained {
		t.Errorf("schema-full ⊆ schema-mixed: %v", v)
	}
	if v, _ := Contains(mixed, full, 300, 4); v != NotContained {
		t.Errorf("schema-mixed ⊄ schema-full (extra properties): %v", v)
	}
}

func TestContainmentUnknownIsHonest(t *testing.T) {
	// negation-based equivalences are beyond the structural fragment: the
	// checker must answer Unknown, never a wrong Contained.
	a := MustParse(`{"not":{"not":{"type":"string"}}}`)
	b := MustParse(`{"type":"string"}`)
	v, _ := Contains(a, b, 50, 5)
	if v == NotContained {
		t.Errorf("double negation of string IS string: must not refute, got %v", v)
	}
}
