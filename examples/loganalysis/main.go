// Log analysis: generate a Wikidata-like query log and run the SHARQL-style
// pipeline of Section 9 on it, printing the Table 3/5/8 slices plus the
// paper's running example query.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/loggen"
	"repro/internal/propertypath"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/sparqlalg"
)

func main() {
	// --- the paper's example query (Section 9) --------------------------
	const example = `SELECT ?label ?coord ?subj
WHERE { ?subj wdt:P31/wdt:P279* wd:Q839954 .
        ?subj wdt:P625 ?coord .
        ?subj rdfs:label ?label FILTER(lang(?label)="en") }`
	q := sparql.MustParse(example)
	fmt.Println("example query triple patterns:", q.TripleCount())
	fmt.Println("operator set:", q.Operators().Name())
	for _, pp := range q.PropertyPaths() {
		fmt.Printf("property path %s: type %s, Table 8 row %q, simple-transitive %v\n",
			pp, propertypath.TypeString(pp), propertypath.Classify(pp),
			propertypath.IsSimpleTransitive(pp))
	}

	// evaluate it on a toy Wikidata slice
	g := rdf.NewGraph()
	g.Add("wd:Troy", "wdt:P31", "wd:Q22698")        // instance of: park? no — site class
	g.Add("wd:Q22698", "wdt:P279", "wd:Q839954")    // subclass of archaeological site
	g.Add("wd:Troy", "wdt:P625", "\"39.95,26.23\"") // coordinates
	g.Add("wd:Troy", "rdfs:label", "Troy")
	sols, err := sparqlalg.Eval(g, sparql.MustParse(
		`SELECT ?subj ?coord WHERE { ?subj wdt:P31/wdt:P279* wd:Q839954 . ?subj wdt:P625 ?coord }`))
	if err != nil {
		fmt.Println("eval error:", err)
	}
	fmt.Println("archaeological sites found:", sols)
	fmt.Println()

	// --- a Wikidata-like robotic log through the pipeline ---------------
	var robot loggen.Source
	for _, s := range loggen.Sources() {
		if s.Name == "WikiRobot/OK" {
			robot = s
		}
	}
	gen := loggen.NewGen(robot, 42)
	queries := make([]string, 20000)
	for i := range queries {
		queries[i] = gen.Next()
	}
	// shard the stream over 4 workers; the merged report is identical to a
	// sequential ingest of the same stream
	r := core.AnalyzeQueries("WikiRobot/OK (sampled)", queries, 4)
	fmt.Printf("ingested %d queries: %d valid, %d unique\n\n", r.Total, r.Valid, r.Unique)
	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "render:", err)
			os.Exit(1)
		}
	}
	check(core.RenderTable3(os.Stdout, r))
	fmt.Println()
	check(core.RenderOperatorSets(os.Stdout, r, core.Table5Rows))
	fmt.Println()
	check(core.RenderTable8(os.Stdout, r))
	fmt.Println()
	check(core.RenderSection96(os.Stdout, r))
}
