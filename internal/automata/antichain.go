package automata

// Antichain containment engine. Deciding L(n1) ⊆ L(e2) classically
// determinizes e2 eagerly (2^n subset states up front, see
// DeterminizeCtx) and then searches the product with the complement.
// This engine instead explores the product of n1 with the subset
// automaton of e2 lazily, on word-packed interned bitsets, and prunes
// with the antichain order of De Wulf–Doyen–Henzinger–Raskin
// ("Antichains: A New Algorithm for Checking Universality of Finite
// Automata", CAV 2006), adapted to containment:
//
// A product pair (q, S) — q an NFA state of the left side, S a
// subset-state of the right side — is a counterexample seed iff some
// word v takes q to a final left state while δ(S, v) contains no final
// right state. Since δ is monotone in S (S ⊆ S' ⇒ δ(S,v) ⊆ δ(S',v)),
// any counterexample reachable through (q, S') with S ⊆ S' is also
// reachable through (q, S): smaller right-side sets reject more. So per
// left state q it suffices to keep the ⊆-minimal frontier of reachable
// subset-states — an antichain. A new pair whose subset-state is a
// superset of a kept one is discarded outright, and kept pairs whose
// subset-state is a superset of a new one are evicted. Discarding is
// sound (the kept smaller set preserves every counterexample) and
// complete (we only ever drop pairs whose counterexamples survive
// elsewhere), so the verdict is exactly that of the classic engine —
// which is retained as ContainsClassic/NFAContainsClassicCtx and pitted
// against this engine by the antichain-containment oracle.
//
// Under a traced context the "automata.contains" span accounts:
//
//	states_expanded  — distinct right-side subset-states materialized
//	                   (lazily; the classic engine's determinize span
//	                   counts all 2^n reachable ones up front)
//	product_states   — product pairs (q, S) expanded
//	antichain_pruned — candidate pairs discarded or evicted by the
//	                   subsumption order

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/automata/bitset"
	"repro/internal/obs"
	"repro/internal/regex"
)

// pairItem is one product worklist entry: left NFA state q against the
// interned right subset-state sid.
type pairItem struct {
	q   int
	sid int
}

func containsAntichainCtx(ctx context.Context, n1, n2 *NFA) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "automata.contains")
	defer span.Finish()
	span.SetAttr("engine", "antichain")
	// The amortized canceler only fires every checkEvery iterations;
	// small instances finish before the first checkpoint, so honor an
	// already-dead context up front.
	if err := ctx.Err(); err != nil {
		return false, err
	}
	statesExpanded := span.Counter("states_expanded")
	productStates := span.Counter("product_states")
	pruned := span.Counter("antichain_pruned")

	// Intern both alphabets before compiling either side, so the flat
	// transition rows of each automaton cover the union alphabet.
	labels := newLabelTable()
	labels.add(n1)
	labels.add(n2)
	c1 := compileNFA(n1, labels)
	c2 := compileNFA(n2, labels)

	interner := bitset.NewInterner(n2.NumStates)
	var (
		accepting []bool            // per sid: does the set contain a right-final state?
		setByID   []bitset.StateSet // lock-free mirror of the interner for this (single-goroutine) search
	)
	intern := func(s bitset.StateSet) int {
		sid, fresh := interner.Intern(s)
		if fresh {
			statesExpanded.Inc()
			accepting = append(accepting, s.Intersects(c2.final))
			setByID = append(setByID, interner.Set(sid))
		}
		return sid
	}

	// chains[q] is the ⊆-minimal antichain of subset-state ids paired
	// with left state q.
	chains := make([][]int, n1.NumStates)
	var stack []pairItem

	// offer runs the counterexample check and the antichain insertion
	// for a candidate pair; it reports a counterexample via the bool.
	offer := func(q, sid int) bool {
		if c1.final.Has(q) && !accepting[sid] {
			return true // word in L(n1) \ L(n2)
		}
		// Single pass: "some kept t ⊆ s" (discard the candidate) and
		// "s ⊂ some kept t" (evict t) are mutually exclusive across the
		// whole chain — t ⊆ s and s ⊆ t' would give t ⊆ t', impossible
		// between distinct antichain members — so in-place filtering
		// cannot lose entries before a discard is discovered.
		s := setByID[sid]
		keep := chains[q][:0]
		for _, t := range chains[q] {
			ts := setByID[t]
			if ts.SubsetOf(s) {
				pruned.Inc() // subsumed by a smaller (or equal) kept set
				return false
			}
			if s.SubsetOf(ts) {
				pruned.Inc() // evicted: the new smaller set dominates it
				continue
			}
			keep = append(keep, t)
		}
		chains[q] = append(keep, sid)
		stack = append(stack, pairItem{q, sid})
		return false
	}

	s0 := intern(c2.initialSet())
	for _, q := range c1.initial {
		if offer(q, s0) {
			return false, nil
		}
	}

	next := bitset.New(n2.NumStates)
	cc := newCanceler(ctx, span)
	for len(stack) > 0 {
		if err := cc.checkpoint(); err != nil {
			return false, err
		}
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Skip pairs evicted from the frontier after being queued: any
		// counterexample through them survives via the evicting pair.
		if !containsID(chains[it.q], it.sid) {
			continue
		}
		productStates.Inc()
		set := setByID[it.sid]
		for l, succs := range c1.trans[it.q] {
			if len(succs) == 0 {
				continue
			}
			c2.step(set, l, next)
			sid2 := intern(next)
			for _, q2 := range succs {
				if offer(q2, sid2) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

func containsID(ids []int, id int) bool {
	for _, t := range ids {
		if t == id {
			return true
		}
	}
	return false
}

// AntichainHardExpr renders the calibrated adversarial family
//
//	(a|b)* (a (a|b)^k a | b (a|b)^k b)
//
// — "the letter k+1 positions before the last equals the last". Its
// reachable subset-states encode the full trailing window of k letters
// with a separate position for 'a' and for 'b' at every offset, so any
// two distinct windows are ⊆-incomparable and antichain pruning never
// fires: self-containment of this family is exponential for the lazy
// engine too (and quadratically worse for the classic one). The
// deadline/504 tests and the load generator use it as the instance
// that must time out; k = 16 needs tens of seconds on 2025 hardware
// while staying small on the wire.
func AntichainHardExpr(k int) string {
	mid := strings.Repeat("(a|b) ", k)
	return fmt.Sprintf("(a|b)* (a %sa | b %sb)", mid, mid)
}

// ContainsClassic is the retained reference implementation of Contains:
// eager subset construction of e2 (DeterminizeCtx), complementation,
// and a product emptiness search — the textbook PSPACE procedure the
// antichain engine is differentially tested against.
func ContainsClassic(e1, e2 *regex.Expr) bool {
	ok, _ := ContainsClassicCtx(context.Background(), e1, e2)
	return ok
}

// ContainsClassicCtx is ContainsClassic with cooperative cancellation.
func ContainsClassicCtx(ctx context.Context, e1, e2 *regex.Expr) (bool, error) {
	return nfaContainsClassicCtx(ctx, Glushkov(e1), e2)
}

// NFAContainsClassicCtx is the classic-engine form of NFAContainsCtx.
func NFAContainsClassicCtx(ctx context.Context, n1 *NFA, e2 *regex.Expr) (bool, error) {
	return nfaContainsClassicCtx(ctx, n1, e2)
}
