// Package xpath implements the XPath fragment needed for the query studies
// of Section 5 of "Towards Theory for Real-World Data": a parser for
// navigational XPath (all 13 axes, node tests, predicates, unions, value
// comparisons and a few core functions), structural metrics (syntax-tree
// size — Baelde et al. observed a power law with a majority of queries of
// size ≤ 13), axis-usage analysis, and classification into the fragments
// the studies measure: positive XPath, Core XPath 1.0, downward XPath, and
// tree patterns (twig queries; over 90% of Pasqua's corpus).
package xpath

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Axis is an XPath navigation axis.
type Axis int

// The thirteen XPath axes (Section 5 lists them; the most popular in the
// Baelde et al. corpus were child 31.1%, attribute 17.1%,
// descendant(-or-self) 3.6%, ancestor(-or-self) 3.6%).
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisAttribute
	AxisFollowing
	AxisFollowingSibling
	AxisPreceding
	AxisPrecedingSibling
	AxisSelf
	AxisNamespace
)

var axisNames = map[Axis]string{
	AxisChild:            "child",
	AxisDescendant:       "descendant",
	AxisDescendantOrSelf: "descendant-or-self",
	AxisParent:           "parent",
	AxisAncestor:         "ancestor",
	AxisAncestorOrSelf:   "ancestor-or-self",
	AxisAttribute:        "attribute",
	AxisFollowing:        "following",
	AxisFollowingSibling: "following-sibling",
	AxisPreceding:        "preceding",
	AxisPrecedingSibling: "preceding-sibling",
	AxisSelf:             "self",
	AxisNamespace:        "namespace",
}

var axisByName = func() map[string]Axis {
	m := map[string]Axis{}
	for a, n := range axisNames {
		m[n] = a
	}
	return m
}()

func (a Axis) String() string { return axisNames[a] }

// Downward reports whether the axis only moves down the tree (or stays).
// Attribute steps count as downward: attributes hang below their element
// (cf. the modeling remark in Example 3.1).
func (a Axis) Downward() bool {
	switch a {
	case AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisSelf, AxisAttribute:
		return true
	}
	return false
}

// Expr is an XPath expression: a union of paths.
type Expr struct {
	Paths []*Path
}

// Path is a location path.
type Path struct {
	Absolute bool // leading '/'
	Steps    []*Step
}

// Step is one location step: axis, node test, and predicates.
type Step struct {
	Axis Axis
	// Test is the node test: a name, "*", "node()" or "text()".
	Test       string
	Predicates []*Pred
}

// PredKind discriminates predicate expressions.
type PredKind int

// Predicate expression kinds.
const (
	PredPath    PredKind = iota // existence of a path
	PredAnd                     // conjunction
	PredOr                      // disjunction
	PredNot                     // negation
	PredCompare                 // value comparison left op right
	PredNumber                  // positional predicate [3]
	PredLiteral                 // string literal (inside comparisons)
	PredFunc                    // function call
)

// Pred is a predicate expression node.
type Pred struct {
	Kind     PredKind
	Subs     []*Pred
	PathVal  *Path
	Op       string // for PredCompare
	Number   float64
	Literal  string
	FuncName string
}

// ---------------------------------------------------------------------------
// Structural metrics and fragment classification
// ---------------------------------------------------------------------------

// Size counts the nodes of the syntax tree (paths, steps and predicate
// nodes) — the measure behind Baelde et al.'s power-law observation.
func (e *Expr) Size() int {
	n := 0
	for _, p := range e.Paths {
		n += p.size()
	}
	if len(e.Paths) > 1 {
		n += len(e.Paths) - 1 // union nodes
	}
	return n
}

func (p *Path) size() int {
	n := 1
	for _, s := range p.Steps {
		n++
		for _, pr := range s.Predicates {
			n += pr.size()
		}
	}
	return n
}

func (pr *Pred) size() int {
	n := 1
	for _, s := range pr.Subs {
		n += s.size()
	}
	if pr.PathVal != nil {
		n += pr.PathVal.size()
	}
	return n
}

// Axes returns the multiset of axes used in the expression.
func (e *Expr) Axes() map[Axis]int {
	out := map[Axis]int{}
	e.walkPaths(func(p *Path) {
		for _, s := range p.Steps {
			out[s.Axis]++
		}
	})
	return out
}

func (e *Expr) walkPaths(f func(*Path)) {
	var visitPred func(pr *Pred)
	var visitPath func(p *Path)
	visitPath = func(p *Path) {
		f(p)
		for _, s := range p.Steps {
			for _, pr := range s.Predicates {
				visitPred(pr)
			}
		}
	}
	visitPred = func(pr *Pred) {
		if pr.PathVal != nil {
			visitPath(pr.PathVal)
		}
		for _, s := range pr.Subs {
			visitPred(s)
		}
	}
	for _, p := range e.Paths {
		visitPath(p)
	}
}

// IsPositive reports membership in positive XPath: no negation anywhere
// (Baelde et al. measured ≈25–30% syntactic membership, ≈60% after
// rewriting; we classify syntactically).
func (e *Expr) IsPositive() bool {
	ok := true
	e.walkPreds(func(pr *Pred) {
		if pr.Kind == PredNot {
			ok = false
		}
		if pr.Kind == PredCompare && pr.Op == "!=" {
			ok = false
		}
	})
	return ok
}

func (e *Expr) walkPreds(f func(*Pred)) {
	var visitPred func(pr *Pred)
	visitPred = func(pr *Pred) {
		f(pr)
		for _, s := range pr.Subs {
			visitPred(s)
		}
		if pr.PathVal != nil {
			for _, st := range pr.PathVal.Steps {
				for _, p2 := range st.Predicates {
					visitPred(p2)
				}
			}
		}
	}
	for _, p := range e.Paths {
		for _, s := range p.Steps {
			for _, pr := range s.Predicates {
				visitPred(pr)
			}
		}
	}
}

// IsCoreXPath reports membership in Core XPath 1.0: purely navigational —
// all axes allowed, predicates are boolean combinations (and/or/not) of
// paths, but no data-value comparisons, positional predicates, literals or
// functions other than not().
func (e *Expr) IsCoreXPath() bool {
	ok := true
	e.walkPreds(func(pr *Pred) {
		switch pr.Kind {
		case PredPath, PredAnd, PredOr, PredNot:
		default:
			ok = false
		}
	})
	return ok
}

// IsDownward reports membership in downward XPath: only child,
// descendant(-or-self) and self axes.
func (e *Expr) IsDownward() bool {
	for a := range e.Axes() {
		if !a.Downward() {
			return false
		}
	}
	return true
}

// IsTreePattern reports whether the expression is a tree pattern (twig
// query, Section 5: over 90% of Pasqua's corpus): a single downward path
// whose predicates are conjunctions of tree patterns — no disjunction,
// negation, comparisons, or positional predicates.
func (e *Expr) IsTreePattern() bool {
	if len(e.Paths) != 1 {
		return false
	}
	if !e.IsDownward() {
		return false
	}
	ok := true
	e.walkPreds(func(pr *Pred) {
		switch pr.Kind {
		case PredPath, PredAnd:
		default:
			ok = false
		}
	})
	return ok
}

func (e *Expr) String() string {
	parts := make([]string, len(e.Paths))
	for i, p := range e.Paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, " | ")
}

func (p *Path) String() string {
	var b strings.Builder
	if p.Absolute {
		b.WriteByte('/')
	}
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%s::%s", s.Axis, s.Test)
		for _, pr := range s.Predicates {
			fmt.Fprintf(&b, "[%s]", pr)
		}
	}
	return b.String()
}

func (pr *Pred) String() string {
	switch pr.Kind {
	case PredPath:
		return pr.PathVal.String()
	case PredAnd:
		return "(" + pr.Subs[0].String() + " and " + pr.Subs[1].String() + ")"
	case PredOr:
		return "(" + pr.Subs[0].String() + " or " + pr.Subs[1].String() + ")"
	case PredNot:
		return "not(" + pr.Subs[0].String() + ")"
	case PredCompare:
		return pr.Subs[0].String() + pr.Op + pr.Subs[1].String()
	case PredNumber:
		return fmt.Sprintf("%g", pr.Number)
	case PredLiteral:
		return "'" + pr.Literal + "'"
	case PredFunc:
		var args []string
		for _, s := range pr.Subs {
			args = append(args, s.String())
		}
		return pr.FuncName + "(" + strings.Join(args, ",") + ")"
	}
	return "?"
}

// SortedAxisNames returns the axis names in canonical order (for reports).
func SortedAxisNames() []string {
	out := make([]string, 0, len(axisNames))
	for _, n := range axisNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == ':'
}
