package sparqlalg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/propertypath"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Solution is a mapping from variables to RDF terms (values as strings).
type Solution map[string]string

// clone copies the solution.
func (s Solution) clone() Solution {
	out := make(Solution, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// compatible reports whether two solutions agree on shared variables — the
// compatibility notion underlying SPARQL joins (Pérez et al.).
func (s Solution) compatible(t Solution) bool {
	for k, v := range s {
		if w, ok := t[k]; ok && w != v {
			return false
		}
	}
	return true
}

func (s Solution) merge(t Solution) Solution {
	out := s.clone()
	for k, v := range t {
		out[k] = v
	}
	return out
}

// Eval evaluates the query's pattern over the graph and returns the
// solution multiset after projection and solution modifiers (DISTINCT,
// ORDER BY is ignored — analysis only needs set semantics — LIMIT/OFFSET
// applied). ASK queries return zero or one empty solution.
func Eval(g rdf.GraphReader, q *sparql.Query) ([]Solution, error) {
	var sols []Solution
	if q.Where == nil {
		sols = []Solution{{}}
	} else {
		var err error
		sols, err = evalPattern(g, q.Where)
		if err != nil {
			return nil, err
		}
	}
	switch q.Type {
	case sparql.Ask:
		if len(sols) > 0 {
			return []Solution{{}}, nil
		}
		return nil, nil
	case sparql.Select:
		if !q.Star {
			projected := make([]Solution, len(sols))
			for i, s := range sols {
				ps := Solution{}
				for _, it := range q.Items {
					if it.Expr == nil {
						if v, ok := s[it.Var]; ok {
							ps[it.Var] = v
						}
					}
					// aggregate select expressions are out of scope for the
					// evaluator (the analyses never evaluate them)
				}
				projected[i] = ps
			}
			sols = projected
		}
		if q.Distinct {
			sols = distinct(sols)
		}
		if q.Offset > 0 {
			if q.Offset >= len(sols) {
				sols = nil
			} else {
				sols = sols[q.Offset:]
			}
		}
		if q.Limit >= 0 && q.Limit < len(sols) {
			sols = sols[:q.Limit]
		}
	}
	return sols, nil
}

func distinct(sols []Solution) []Solution {
	seen := map[string]bool{}
	var out []Solution
	for _, s := range sols {
		k := solKey(s)
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

func solKey(s Solution) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, s[k])
	}
	return b.String()
}

// IsAnswer decides the Evaluation problem of Section 9.1 (Pérez et al.):
// is μ an answer to the pattern over the dataset?
func IsAnswer(g rdf.GraphReader, q *sparql.Query, mu Solution) (bool, error) {
	sols, err := Eval(g, q)
	if err != nil {
		return false, err
	}
	want := solKey(mu)
	for _, s := range sols {
		if solKey(s) == want {
			return true, nil
		}
	}
	return false, nil
}

func evalPattern(g rdf.GraphReader, p *sparql.Pattern) ([]Solution, error) {
	switch p.Kind {
	case sparql.PGroup:
		sols := []Solution{{}}
		for _, c := range p.Subs {
			switch c.Kind {
			case sparql.PFilter:
				var kept []Solution
				for _, s := range sols {
					ok, err := evalFilter(g, c.Expr, s)
					if err != nil {
						return nil, err
					}
					if ok {
						kept = append(kept, s)
					}
				}
				sols = kept
			case sparql.POptional:
				right, err := evalPattern(g, c.Subs[0])
				if err != nil {
					return nil, err
				}
				sols = leftJoin(sols, right)
			case sparql.PMinus:
				right, err := evalPattern(g, c.Subs[0])
				if err != nil {
					return nil, err
				}
				sols = minus(sols, right)
			case sparql.PBind:
				var next []Solution
				for _, s := range sols {
					v, err := evalExprValue(g, c.Expr, s)
					if err == nil && v != "" {
						s2 := s.clone()
						s2[c.BindVar] = v
						next = append(next, s2)
					} else {
						next = append(next, s)
					}
				}
				sols = next
			default:
				right, err := evalPattern(g, c)
				if err != nil {
					return nil, err
				}
				sols = join(sols, right)
			}
			if len(sols) == 0 {
				// joins and filters can only shrink; short-circuit except
				// that OPTIONAL/MINUS of an empty left side stays empty too
				break
			}
		}
		return sols, nil
	case sparql.PTriple:
		return evalTriple(g, p), nil
	case sparql.PPath:
		return evalPathPattern(g, p), nil
	case sparql.PUnion:
		l, err := evalPattern(g, p.Subs[0])
		if err != nil {
			return nil, err
		}
		r, err := evalPattern(g, p.Subs[1])
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case sparql.POptional:
		return evalPattern(g, &sparql.Pattern{Kind: sparql.PGroup, Subs: []*sparql.Pattern{p}})
	case sparql.PGraph, sparql.PService:
		// single-graph store: evaluate the body against the same graph
		return evalPattern(g, p.Subs[0])
	case sparql.PValues:
		var out []Solution
		for _, row := range p.ValuesData {
			s := Solution{}
			for i, v := range p.ValuesVars {
				if i < len(row) && row[i] != "" {
					s[v] = row[i]
				}
			}
			out = append(out, s)
		}
		return out, nil
	case sparql.PSubquery:
		return Eval(g, p.Query)
	case sparql.PFilter:
		return nil, fmt.Errorf("sparqlalg: dangling FILTER")
	case sparql.PMinus:
		return []Solution{{}}, nil
	case sparql.PBind:
		return []Solution{{}}, nil
	}
	return nil, fmt.Errorf("sparqlalg: unsupported pattern kind %d", p.Kind)
}

func join(l, r []Solution) []Solution {
	var out []Solution
	for _, a := range l {
		for _, b := range r {
			if a.compatible(b) {
				out = append(out, a.merge(b))
			}
		}
	}
	return out
}

func leftJoin(l, r []Solution) []Solution {
	var out []Solution
	for _, a := range l {
		matched := false
		for _, b := range r {
			if a.compatible(b) {
				out = append(out, a.merge(b))
				matched = true
			}
		}
		if !matched {
			out = append(out, a)
		}
	}
	return out
}

func minus(l, r []Solution) []Solution {
	var out []Solution
	for _, a := range l {
		excluded := false
		for _, b := range r {
			if a.compatible(b) && sharesVar(a, b) {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, a)
		}
	}
	return out
}

func sharesVar(a, b Solution) bool {
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}

func evalTriple(g rdf.GraphReader, p *sparql.Pattern) []Solution {
	s, pr, o := termPattern(p.S), termPattern(p.P), termPattern(p.O)
	var out []Solution
	for _, t := range g.Match(s, pr, o) {
		sol := Solution{}
		ok := bindTerm(p.S, t.S, sol) && bindTerm(p.P, t.P, sol) && bindTerm(p.O, t.O, sol)
		if ok {
			out = append(out, sol)
		}
	}
	return out
}

// termPattern renders a term as a Match argument ("" = wildcard).
func termPattern(t sparql.Term) string {
	if t.IsVarLike() {
		return ""
	}
	return t.Value
}

func bindTerm(t sparql.Term, value string, sol Solution) bool {
	if !t.IsVarLike() {
		return t.Value == value
	}
	if prev, ok := sol[t.Value]; ok {
		return prev == value
	}
	sol[t.Value] = value
	return true
}

func evalPathPattern(g rdf.GraphReader, p *sparql.Pattern) []Solution {
	var starts []string
	if p.S.IsVarLike() {
		// all nodes of the graph
		set := map[string]bool{}
		for _, s := range g.Subjects() {
			set[s] = true
		}
		for _, o := range g.Objects() {
			set[o] = true
		}
		for n := range set {
			starts = append(starts, n)
		}
		sort.Strings(starts)
	} else {
		starts = []string{p.S.Value}
	}
	var out []Solution
	for _, start := range starts {
		for _, end := range propertypath.Eval(g, p.Path, start) {
			sol := Solution{}
			if bindTerm(p.S, start, sol) && bindTerm(p.O, end, sol) {
				out = append(out, sol)
			}
		}
	}
	return out
}

// evalFilter evaluates a filter constraint under a solution; unsupported
// builtins evaluate to an error, which the caller treats as false-ish by
// propagating (matching SPARQL's error semantics would drop the row; we
// drop it too by returning false, nil for unknown functions).
func evalFilter(g rdf.GraphReader, e *sparql.Expr, s Solution) (bool, error) {
	switch e.Kind {
	case sparql.EBool:
		l, err := evalFilter(g, e.Subs[0], s)
		if err != nil {
			return false, err
		}
		r, err := evalFilter(g, e.Subs[1], s)
		if err != nil {
			return false, err
		}
		if e.Op == "&&" {
			return l && r, nil
		}
		return l || r, nil
	case sparql.ENot:
		v, err := evalFilter(g, e.Subs[0], s)
		return !v, err
	case sparql.ECompare:
		l, errL := evalExprValue(g, e.Subs[0], s)
		r, errR := evalExprValue(g, e.Subs[1], s)
		if errL != nil || errR != nil {
			return false, nil // error semantics: row dropped
		}
		return compareValues(l, r, e.Op), nil
	case sparql.EExists:
		sub, err := evalPattern(g, e.Pattern)
		if err != nil {
			return false, err
		}
		found := false
		for _, b := range sub {
			if s.compatible(b) {
				found = true
				break
			}
		}
		if e.Negated {
			return !found, nil
		}
		return found, nil
	case sparql.EIn:
		v, err := evalExprValue(g, e.Subs[0], s)
		if err != nil {
			return false, nil
		}
		found := false
		for _, cand := range e.Subs[1:] {
			c, err := evalExprValue(g, cand, s)
			if err == nil && c == v {
				found = true
				break
			}
		}
		if e.Negated {
			return !found, nil
		}
		return found, nil
	case sparql.EFunc:
		switch e.Func {
		case "BOUND":
			if len(e.Subs) == 1 && e.Subs[0].Kind == sparql.EVar {
				_, ok := s[e.Subs[0].Var]
				return ok, nil
			}
		}
		return false, nil
	case sparql.EVar:
		_, ok := s[e.Var]
		return ok, nil
	case sparql.EConst:
		return e.Const == "true", nil
	}
	return false, nil
}

func evalExprValue(g rdf.GraphReader, e *sparql.Expr, s Solution) (string, error) {
	switch e.Kind {
	case sparql.EVar:
		if v, ok := s[e.Var]; ok {
			return v, nil
		}
		return "", fmt.Errorf("unbound variable ?%s", e.Var)
	case sparql.EConst:
		return e.Const, nil
	case sparql.EFunc:
		switch e.Func {
		case "STR":
			if len(e.Subs) == 1 {
				return evalExprValue(g, e.Subs[0], s)
			}
		case "LANG":
			// the tree abstraction drops language tags; evaluate to ""
			return "", nil
		}
		return "", fmt.Errorf("unsupported function %s", e.Func)
	case sparql.EArith:
		if e.Op == "neg" {
			v, err := evalNumber(g, e.Subs[0], s)
			if err != nil {
				return "", err
			}
			return formatNumber(-v), nil
		}
		l, err := evalNumber(g, e.Subs[0], s)
		if err != nil {
			return "", err
		}
		r, err := evalNumber(g, e.Subs[1], s)
		if err != nil {
			return "", err
		}
		switch e.Op {
		case "+":
			return formatNumber(l + r), nil
		case "-":
			return formatNumber(l - r), nil
		case "*":
			return formatNumber(l * r), nil
		case "/":
			if r == 0 {
				return "", fmt.Errorf("division by zero")
			}
			return formatNumber(l / r), nil
		}
	}
	return "", fmt.Errorf("unsupported expression")
}

func evalNumber(g rdf.GraphReader, e *sparql.Expr, s Solution) (float64, error) {
	v, err := evalExprValue(g, e, s)
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(v, 64)
}

func formatNumber(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func compareValues(l, r, op string) bool {
	lf, errL := strconv.ParseFloat(l, 64)
	rf, errR := strconv.ParseFloat(r, 64)
	if errL == nil && errR == nil {
		switch op {
		case "=":
			return lf == rf
		case "!=":
			return lf != rf
		case "<":
			return lf < rf
		case ">":
			return lf > rf
		case "<=":
			return lf <= rf
		case ">=":
			return lf >= rf
		}
	}
	switch op {
	case "=":
		return l == r
	case "!=":
		return l != r
	case "<":
		return l < r
	case ">":
		return l > r
	case "<=":
		return l <= r
	case ">=":
		return l >= r
	}
	return false
}
