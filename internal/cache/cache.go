// Package cache implements the verdict cache of the service layer: a
// bounded, thread-safe LRU map keyed on canonical renderings of request
// inputs. Because keys are canonical (the parsed input re-rendered, not
// the raw request bytes), syntactically different but identical requests
// share an entry. Hit/miss/eviction counters feed the /metrics endpoint.
package cache

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU. The zero value is not usable; call New.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	idx       map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key string
	val any
}

// New returns a cache holding at most capacity entries. A capacity <= 0
// disables storage: every Get misses and Put is a no-op (the counters
// still work, so a cache-less server renders honest metrics).
func New(capacity int) *Cache {
	return &Cache{capacity: capacity, ll: list.New(), idx: map[string]*list.Element{}}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache) Put(key string, val any) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*entry).key)
		c.evictions++
	}
	c.idx[key] = c.ll.PushFront(&entry{key: key, val: val})
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Capacity  int
}

// Stats returns the current counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len(), Capacity: c.capacity}
}
