package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/propertypath"
	"repro/internal/sparql"
)

func pct(n, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(total))
}

// RenderTable2 prints Total/Valid/Unique per source (Table 2). It
// returns the first write error.
func RenderTable2(w io.Writer, reports []*SourceReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Source\tTotal #Q\tValid #Q\tUnique #Q")
	var t, v, u int
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", r.Name, r.Total, r.Valid, r.Unique)
		t += r.Total
		v += r.Valid
		u += r.Unique
	}
	fmt.Fprintf(tw, "Total\t%d\t%d\t%d\n", t, v, u)
	return tw.Flush()
}

// RenderFigure3 prints the triple-count distribution per source
// (Figure 3): for each source the percentage of queries with 0..11+
// triples, Valid (Unique).
func RenderFigure3(w io.Writer, reports []*SourceReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Source")
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(tw, "\t%d", i)
	}
	fmt.Fprintln(tw, "\t11+")
	for _, r := range reports {
		fmt.Fprintf(tw, "%s", r.Name)
		for i := 0; i < 12; i++ {
			fmt.Fprintf(tw, "\t%s (%s)",
				pct(r.TripleBuckets[i].V, r.CountedV),
				pct(r.TripleBuckets[i].U, r.CountedU))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderTable3 prints the per-feature usage for a group (one half of
// Table 3).
func RenderTable3(w io.Writer, r *SourceReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tAbsoluteV\tRelativeV\tAbsoluteU\tRelativeU\n", r.Name)
	for _, f := range sparql.Table3Features {
		c := r.Features[f]
		if c == nil {
			c = &Counter2{}
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n", f, c.V, pct(c.V, r.Valid), c.U, pct(c.U, r.Unique))
	}
	return tw.Flush()
}

// Table4Rows / Table5Rows are the operator-set rows in the papers' order.
var Table4Rows = []string{"none", "And", "Filter", "And, Filter"}
var Table5Rows = []string{
	"none", "And", "Filter", "And, Filter",
	"2RPQ", "And, 2RPQ", "Filter, 2RPQ", "And, Filter, 2RPQ",
}

// RenderOperatorSets prints Table 4 (rows = Table4Rows) or Table 5
// (rows = Table5Rows) for a group.
func RenderOperatorSets(w io.Writer, r *SourceReport, rows []string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Operator Set (%s)\tAbsoluteV\tRelativeV\tAbsoluteU\tRelativeU\n", r.Name)
	var subV, subU int
	for _, name := range rows {
		c := r.OperatorSets[name]
		if c == nil {
			c = &Counter2{}
		}
		subV += c.V
		subU += c.U
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n", name, c.V, pct(c.V, r.Valid), c.U, pct(c.U, r.Unique))
	}
	label := "CQ+F subtotal"
	if len(rows) > 4 {
		label = "C2RPQ+F subtotal"
	}
	fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n", label, subV, pct(subV, r.Valid), subU, pct(subU, r.Unique))
	return tw.Flush()
}

// RenderTable6 prints hypertree-width and free-connex acyclicity for the
// CQ (top) and CQ+F (bottom) fragments of a group.
func RenderTable6(w io.Writer, r *SourceReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	part := func(title string, st *HypertreeStats) {
		fmt.Fprintf(tw, "%s: %s\tAbsoluteV\tRelativeV\tAbsoluteU\tRelativeU\n", r.Name, title)
		row := func(name string, c Counter2) {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n", name, c.V, pct(c.V, st.Total.V), c.U, pct(c.U, st.Total.U))
		}
		row("FCA", st.FCA)
		row("htw<=1", st.Htw1)
		row("htw<=2", st.Htw2)
		row("htw<=3", st.Htw3)
		row("Total", st.Total)
	}
	part("CQ", &r.CQ)
	part("CQ+F", &r.CQF)
	return tw.Flush()
}

// RenderTable7 prints the cumulative shape analysis for graph-CQ+F
// queries, with constants (top) and without (bottom).
func RenderTable7(w io.Writer, r *SourceReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	part := func(title string, levels *[numShapeLevels]Counter2) {
		fmt.Fprintf(tw, "graph-CQ+F/ %s (%s)\tAbsoluteV\tRelativeV\tAbsoluteU\tRelativeU\n", title, r.Name)
		cumV, cumU := 0, 0
		for lvl := ShapeNoEdge; lvl <= ShapeTW3; lvl++ {
			cumV += levels[lvl].V
			cumU += levels[lvl].U
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n", lvl, cumV, pct(cumV, r.GraphCQF.V), cumU, pct(cumU, r.GraphCQF.U))
		}
		fmt.Fprintf(tw, "total\t%d\t%s\t%d\t%s\n", r.GraphCQF.V, pct(r.GraphCQF.V, r.GraphCQF.V), r.GraphCQF.U, pct(r.GraphCQF.U, r.GraphCQF.U))
	}
	part("with constants", &r.ShapeWith)
	part("without constants", &r.ShapeWithout)
	return tw.Flush()
}

// RenderTable8 prints the property-path type distribution of a group.
func RenderTable8(w io.Writer, r *SourceReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Expression Type (%s)\tAbsoluteV\tRelativeV\tAbsoluteU\tRelativeU\n", r.Name)
	for _, row := range propertypath.Table8Rows {
		c := r.PPRows[row]
		if c == nil {
			c = &Counter2{}
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n", row, c.V, pct(c.V, r.PPTotal.V), c.U, pct(c.U, r.PPTotal.U))
	}
	fmt.Fprintf(tw, "Total\t%d\t100%%\t%d\t100%%\n", r.PPTotal.V, r.PPTotal.U)
	return tw.Flush()
}

// RenderSection94 prints the well-designedness statistics.
func RenderSection94(w io.Writer, r *SourceReport) error {
	_, err := fmt.Fprintf(w, "%s: AFO queries %d (%d); well-designed %s (%s) of AFO; well-behaved %s (%s) of all\n",
		r.Name, r.AFO.V, r.AFO.U,
		pct(r.WellDesigned.V, r.AFO.V), pct(r.WellDesigned.U, r.AFO.U),
		pct(r.WellBehaved.V, r.Valid), pct(r.WellBehaved.U, r.Unique))
	return err
}

// RenderSection96 prints the simple-transitive-expression and
// tractability outlier counts.
func RenderSection96(w io.Writer, r *SourceReport) error {
	_, err := fmt.Fprintf(w, "%s: property paths %d (%d); outside STE %d (%d); outside C_tract %d (%d); outside T_tract %d (%d)\n",
		r.Name, r.PPTotal.V, r.PPTotal.U,
		r.NonSTE.V, r.NonSTE.U, r.NonCtract.V, r.NonCtract.U, r.NonTtract.V, r.NonTtract.U)
	return err
}

// RenderTable1 generates the synthetic Table 1 datasets and prints the
// treewidth bounds.
func RenderTable1(w io.Writer, seed int64, scale float64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t#nodes\t#edges\tlower tw\tupper tw")
	for _, ds := range graphgen.Table1Datasets(seed, scale) {
		lb, ub := graph.Bounds(ds.Graph)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", ds.Name, ds.Graph.N(), ds.Graph.M(), lb, ub)
	}
	return tw.Flush()
}

// SortedOperatorSets returns the observed operator sets sorted by name
// (diagnostics).
func (r *SourceReport) SortedOperatorSets() []string {
	out := make([]string, 0, len(r.OperatorSets))
	for k := range r.OperatorSets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GroupReports splits per-source reports into the paper's two groups and
// merges each: DBpedia–BritM and Wikidata.
func GroupReports(reports []*SourceReport) (dbpedia, wikidata *SourceReport) {
	var dbp, wiki []*SourceReport
	for _, r := range reports {
		if strings.HasPrefix(r.Name, "Wiki") {
			wiki = append(wiki, r)
		} else {
			dbp = append(dbp, r)
		}
	}
	return Merge("DBpedia-BritM", dbp), Merge("Wikidata", wiki)
}
