package bitset

import (
	"math/rand"
	"sync"
	"testing"
)

// modelSet is the map-backed reference model the StateSet operations
// are cross-checked against.
type modelSet map[int]bool

func randomPair(r *rand.Rand, n int) (StateSet, modelSet) {
	s, m := New(n), modelSet{}
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			s.Add(i)
			m[i] = true
		}
	}
	return s, m
}

func agree(t *testing.T, s StateSet, m modelSet, n int, what string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if s.Has(i) != m[i] {
			t.Fatalf("%s: Has(%d) = %v, model = %v", what, i, s.Has(i), m[i])
		}
	}
	if s.Len() != len(m) {
		t.Fatalf("%s: Len = %d, model = %d", what, s.Len(), len(m))
	}
}

// TestStateSetOpsAgainstModel drives union/intersect/subset/iterate on
// randomized universes (including word-boundary sizes) against the map
// model.
func TestStateSetOpsAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 63, 64, 65, 128, 200} {
		for trial := 0; trial < 200; trial++ {
			a, ma := randomPair(r, n)
			b, mb := randomPair(r, n)
			agree(t, a, ma, n, "a")
			agree(t, b, mb, n, "b")

			// subset / intersects / equal vs model
			wantSub := true
			for i := range ma {
				if !mb[i] {
					wantSub = false
				}
			}
			if a.SubsetOf(b) != wantSub {
				t.Fatalf("n=%d SubsetOf = %v, model = %v (a=%v b=%v)",
					n, a.SubsetOf(b), wantSub, a.Members(), b.Members())
			}
			wantInter := false
			for i := range ma {
				if mb[i] {
					wantInter = true
				}
			}
			if a.Intersects(b) != wantInter {
				t.Fatalf("n=%d Intersects = %v, model = %v", n, a.Intersects(b), wantInter)
			}
			wantEq := len(ma) == len(mb) && wantSub
			if a.Equal(b) != wantEq {
				t.Fatalf("n=%d Equal = %v, model = %v", n, a.Equal(b), wantEq)
			}

			// union
			u, mu := a.Clone(), modelSet{}
			u.UnionWith(b)
			for i := range ma {
				mu[i] = true
			}
			for i := range mb {
				mu[i] = true
			}
			agree(t, u, mu, n, "union")
			if !a.SubsetOf(u) || !b.SubsetOf(u) {
				t.Fatalf("n=%d union is not an upper bound", n)
			}

			// intersection
			x, mx := a.Clone(), modelSet{}
			x.IntersectWith(b)
			for i := range ma {
				if mb[i] {
					mx[i] = true
				}
			}
			agree(t, x, mx, n, "intersect")
			if !x.SubsetOf(a) || !x.SubsetOf(b) {
				t.Fatalf("n=%d intersection is not a lower bound", n)
			}
			if x.Empty() != (len(mx) == 0) {
				t.Fatalf("n=%d Empty = %v, model = %v", n, x.Empty(), len(mx) == 0)
			}

			// iteration order and content
			var got []int
			a.ForEach(func(i int) { got = append(got, i) })
			for j := 1; j < len(got); j++ {
				if got[j-1] >= got[j] {
					t.Fatalf("n=%d ForEach out of order: %v", n, got)
				}
			}
			if len(got) != len(ma) {
				t.Fatalf("n=%d ForEach visited %d members, model has %d", n, len(got), len(ma))
			}
			for _, i := range got {
				if !ma[i] {
					t.Fatalf("n=%d ForEach visited non-member %d", n, i)
				}
			}
		}
	}
}

// TestInternerCanonicalizes pins hash-consing: structurally equal sets
// built in different insertion orders get the same id, distinct sets
// get distinct ids, and Set(id) round-trips.
func TestInternerCanonicalizes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n = 150
	in := NewInterner(n)
	ids := map[string]int{}
	keyOf := func(s StateSet) string {
		b := make([]byte, 0, len(s)*8)
		for _, w := range s {
			for i := 0; i < 8; i++ {
				b = append(b, byte(w>>uint(8*i)))
			}
		}
		return string(b)
	}
	for trial := 0; trial < 500; trial++ {
		s, _ := randomPair(r, n)
		id, fresh := in.Intern(s)
		if prev, seen := ids[keyOf(s)]; seen {
			if fresh || id != prev {
				t.Fatalf("equal set re-interned as id %d (fresh=%v), want %d", id, fresh, prev)
			}
		} else {
			if !fresh {
				t.Fatalf("new set reported fresh=false (id %d)", id)
			}
			ids[keyOf(s)] = id
		}
		if !in.Set(id).Equal(s) {
			t.Fatalf("Set(%d) does not round-trip", id)
		}
		// mutating the caller's set must not corrupt the interned copy
		s.Add(trial % n)
		s2 := in.Set(id)
		if got := keyOf(s2); got != keyOf(s2.Clone()) {
			t.Fatal("interned set aliased caller scratch")
		}
	}
	if in.Len() != len(ids) {
		t.Fatalf("interner Len = %d, distinct sets = %d", in.Len(), len(ids))
	}
	// shuffled rebuilds of a known set hit the same id
	base := New(n)
	for _, i := range []int{3, 64, 65, 149} {
		base.Add(i)
	}
	want, _ := in.Intern(base)
	for trial := 0; trial < 20; trial++ {
		s := New(n)
		for _, i := range r.Perm(4) {
			s.Add([]int{3, 64, 65, 149}[i])
		}
		if id, fresh := in.Intern(s); id != want || fresh {
			t.Fatalf("shuffled rebuild interned as %d (fresh=%v), want %d", id, fresh, want)
		}
	}
}

// TestInternerConcurrent hammers one interner from many goroutines with
// overlapping sets; run under -race. Every goroutine records the ids it
// got, and equal sets must have resolved to equal ids across all of
// them.
func TestInternerConcurrent(t *testing.T) {
	const (
		n          = 90
		goroutines = 8
		perG       = 400
		universe   = 64 // distinct set shapes, deliberately colliding across goroutines
	)
	in := NewInterner(n)
	shape := func(k int) StateSet {
		s := New(n)
		for i := 0; i < n; i++ {
			if (i*(k+1))%7 == 0 || i == k {
				s.Add(i)
			}
		}
		return s
	}
	got := make([]map[int]int, goroutines) // shape -> id per goroutine
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			got[g] = map[int]int{}
			for i := 0; i < perG; i++ {
				k := r.Intn(universe)
				id, _ := in.Intern(shape(k))
				if prev, ok := got[g][k]; ok && prev != id {
					t.Errorf("goroutine %d: shape %d interned as both %d and %d", g, k, prev, id)
					return
				}
				got[g][k] = id
			}
		}(g)
	}
	wg.Wait()
	canon := map[int]int{}
	for g := range got {
		for k, id := range got[g] {
			if prev, ok := canon[k]; ok && prev != id {
				t.Fatalf("shape %d has ids %d and %d across goroutines", k, prev, id)
			}
			canon[k] = id
		}
	}
	if in.Len() > universe {
		t.Fatalf("interner holds %d sets, only %d distinct shapes exist", in.Len(), universe)
	}
}
