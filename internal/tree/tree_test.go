package tree

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []string{
		"a",
		"a(b)",
		"a(b, c)",
		"persons(person(name, birthplace(city, state, country)), person(name, birthplace(city, state)))",
	}
	for _, s := range cases {
		n, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := n.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	for _, bad := range []string{"", "(", "a(", "a(b", "a(b,)", "a)b", "a(b))", "a b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestMetrics(t *testing.T) {
	n := MustParse("a(b(c, d), e)")
	if n.Size() != 5 {
		t.Errorf("Size = %d", n.Size())
	}
	if n.Depth() != 3 {
		t.Errorf("Depth = %d", n.Depth())
	}
	if got := strings.Join(n.ChildWord(), " "); got != "b e" {
		t.Errorf("ChildWord = %q", got)
	}
	labels := n.Labels()
	if len(labels) != 5 || !labels["c"] {
		t.Errorf("Labels = %v", labels)
	}
}

func TestWalkPath(t *testing.T) {
	n := MustParse("a(b(c))")
	var paths []string
	n.WalkPath(func(m *Node, anc []string) {
		paths = append(paths, strings.Join(append(append([]string{}, anc...), m.Label), "/"))
	})
	want := []string{"a", "a/b", "a/b/c"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("path %d = %q, want %q", i, paths[i], want[i])
		}
	}
}

func TestCloneEqual(t *testing.T) {
	n := MustParse("a(b(c, d), e)")
	c := n.Clone()
	if !n.Equal(c) {
		t.Error("clone not equal")
	}
	c.Children[0].Label = "x"
	if n.Equal(c) {
		t.Error("mutated clone still equal")
	}
	if n.Children[0].Label != "b" {
		t.Error("clone aliases original")
	}
}

func TestRoundTripQuick(t *testing.T) {
	// property: String ∘ Parse is the identity on rendered trees
	f := func(shape uint8, depth uint8) bool {
		n := buildTree(int(shape), int(depth)%4)
		s := n.String()
		m, err := Parse(s)
		return err == nil && m.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildTree(shape, depth int) *Node {
	labels := []string{"a", "b", "c", "d"}
	n := New(labels[shape%len(labels)])
	if depth > 0 {
		for i := 0; i <= shape%3; i++ {
			n.Add(buildTree(shape/3+i, depth-1))
		}
	}
	return n
}
