package oracle

import (
	"strings"
	"testing"
)

// TestAntichainInjectedBugCaught proves the antichain oracle detects a
// deliberately mutated engine verdict within a modest seed band, shrinks
// the reproducer, and replays deterministically.
func TestAntichainInjectedBugCaught(t *testing.T) {
	SetInjectedBug("antichain-containment")
	defer SetInjectedBug("")
	o, err := Select([]string{"antichain-containment"})
	if err != nil {
		t.Fatal(err)
	}
	var d *Divergence
	for seed := int64(1); seed <= 300; seed++ {
		if d = RunTrial(o[0], seed); d != nil {
			break
		}
	}
	if d == nil {
		t.Fatal("injected bug not caught in 300 trials")
	}
	t.Logf("caught: %s", d)
	if !strings.Contains(d.Detail, "antichain") && !strings.Contains(d.Detail, "EquivalentCtx") {
		t.Fatalf("divergence does not implicate the engine: %s", d.Detail)
	}
	// the mutation flips the verdict when the right side has >= 2
	// positions, so the shrunk right side must stay tiny
	if len(d.Input) > 60 {
		t.Fatalf("reproducer not shrunk: %q", d.Input)
	}
	d2 := RunTrial(o[0], d.Seed)
	if d2 == nil || d2.Input != d.Input || d2.Detail != d.Detail {
		t.Fatalf("replay of seed %d did not reproduce:\nwant %s\ngot  %v", d.Seed, d, d2)
	}
}

// TestRunTrials pins the exact-count driver CI relies on: the trial
// count must not depend on wall time, and the early-stop bound must
// hold under an injected bug.
func TestRunTrials(t *testing.T) {
	o, err := Select([]string{"antichain-containment"})
	if err != nil {
		t.Fatal(err)
	}
	st := RunTrials(o[0], 1, 50, 1)
	if st.Trials != 50 || len(st.Divergences) != 0 {
		t.Fatalf("trials=%d divergences=%d, want 50 and 0", st.Trials, len(st.Divergences))
	}

	SetInjectedBug("antichain-containment")
	defer SetInjectedBug("")
	st = RunTrials(o[0], 1, 1000, 1)
	if len(st.Divergences) != 1 {
		t.Fatalf("divergences=%d under injected bug, want 1", len(st.Divergences))
	}
	if st.Trials >= 1000 {
		t.Fatalf("trials=%d, want early stop after the first divergence", st.Trials)
	}
}
