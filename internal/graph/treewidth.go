package graph

import (
	"math/bits"
	"sort"
)

// Treewidth machinery. Deciding treewidth ≤ k is NP-complete (Arnborg,
// Corneil & Proskurowski, cited in Section 7.1.1), so — exactly like Maniu
// et al. — large graphs get lower/upper *bounds* from polynomial
// heuristics, and only small graphs (the canonical query graphs of
// Table 7) are decided exactly.

// UpperBoundMinDegree runs the min-degree elimination heuristic: repeatedly
// eliminate a minimum-degree vertex, turning its neighborhood into a
// clique; the maximum degree at elimination bounds the treewidth from
// above.
func UpperBoundMinDegree(g *Graph) int {
	return eliminationBound(g, func(h *Graph, alive []bool) int {
		best, bestDeg := -1, 1<<30
		for v := 0; v < h.n; v++ {
			if !alive[v] {
				continue
			}
			if d := h.Degree(v); d < bestDeg {
				best, bestDeg = v, d
			}
		}
		return best
	})
}

// UpperBoundMinFill runs the min-fill heuristic: eliminate the vertex whose
// elimination adds the fewest fill edges.
func UpperBoundMinFill(g *Graph) int {
	return eliminationBound(g, func(h *Graph, alive []bool) int {
		best, bestFill := -1, 1<<30
		for v := 0; v < h.n; v++ {
			if !alive[v] {
				continue
			}
			nbr := h.Neighbors(v)
			fill := 0
			for i := 0; i < len(nbr) && fill < bestFill; i++ {
				for j := i + 1; j < len(nbr); j++ {
					if !h.HasEdge(nbr[i], nbr[j]) {
						fill++
						if fill >= bestFill {
							break
						}
					}
				}
			}
			if fill < bestFill {
				best, bestFill = v, fill
			}
		}
		return best
	})
}

func eliminationBound(g *Graph, pick func(h *Graph, alive []bool) int) int {
	h := g.Clone()
	alive := make([]bool, h.n)
	for i := range alive {
		alive[i] = true
	}
	width := 0
	for remaining := h.n; remaining > 0; remaining-- {
		v := pick(h, alive)
		if d := h.Degree(v); d > width {
			width = d
		}
		nbr := h.Neighbors(v)
		for i := 0; i < len(nbr); i++ {
			for j := i + 1; j < len(nbr); j++ {
				h.AddEdge(nbr[i], nbr[j])
			}
		}
		for _, u := range nbr {
			delete(h.adj[u], v)
		}
		h.adj[v] = map[int]bool{}
		alive[v] = false
	}
	return width
}

// UpperBound returns the better of the two elimination heuristics.
func UpperBound(g *Graph) int {
	a := UpperBoundMinDegree(g)
	if b := UpperBoundMinFill(g); b < a {
		return b
	}
	return a
}

// LowerBoundDegeneracy returns the degeneracy (MMD: maximum over subgraphs
// of the minimum degree), a classical treewidth lower bound.
func LowerBoundDegeneracy(g *Graph) int {
	h := g.Clone()
	alive := make([]bool, h.n)
	for i := range alive {
		alive[i] = true
	}
	lb := 0
	for remaining := h.n; remaining > 0; remaining-- {
		v, deg := -1, 1<<30
		for u := 0; u < h.n; u++ {
			if alive[u] && h.Degree(u) < deg {
				v, deg = u, h.Degree(u)
			}
		}
		if deg > lb && deg < 1<<30 {
			lb = deg
		}
		for _, u := range h.Neighbors(v) {
			delete(h.adj[u], v)
		}
		h.adj[v] = map[int]bool{}
		alive[v] = false
	}
	return lb
}

// LowerBoundMMDPlus computes the MMD+ (least-c) lower bound: repeatedly
// CONTRACT a minimum-degree vertex into its least-degree neighbor (instead
// of deleting it); the maximum of the minimum degrees seen bounds the
// treewidth from below (contraction preserves minors).
func LowerBoundMMDPlus(g *Graph) int {
	h := g.Clone()
	alive := make([]bool, h.n)
	for i := range alive {
		alive[i] = true
	}
	lb := 0
	remaining := h.n
	for remaining > 1 {
		v, deg := -1, 1<<30
		for u := 0; u < h.n; u++ {
			if alive[u] && h.Degree(u) < deg {
				v, deg = u, h.Degree(u)
			}
		}
		if deg > lb && deg < 1<<30 {
			lb = deg
		}
		if deg == 0 {
			alive[v] = false
			remaining--
			continue
		}
		// least-degree neighbor
		w, wdeg := -1, 1<<30
		for u := range h.adj[v] {
			if h.Degree(u) < wdeg {
				w, wdeg = u, h.Degree(u)
			}
		}
		// contract v into w
		for u := range h.adj[v] {
			if u != w {
				h.AddEdge(w, u)
			}
			delete(h.adj[u], v)
		}
		h.adj[v] = map[int]bool{}
		alive[v] = false
		remaining--
	}
	return lb
}

// LowerBound returns the better of the lower-bound heuristics.
func LowerBound(g *Graph) int {
	a := LowerBoundDegeneracy(g)
	if b := LowerBoundMMDPlus(g); b > a {
		return b
	}
	return a
}

// TreewidthAtMost decides exactly whether tw(G) ≤ k for graphs with at most
// 63 vertices per connected component, by memoized search over elimination
// orders. It returns (answer, true) or (false, false) when the graph is too
// large to decide exactly.
func TreewidthAtMost(g *Graph, k int) (bool, bool) {
	for _, comp := range g.Components() {
		if len(comp) > 63 {
			return false, false
		}
		sub := g.InducedSubgraph(comp)
		if !twAtMostComponent(sub, k) {
			return false, true
		}
	}
	return true, true
}

func twAtMostComponent(g *Graph, k int) bool {
	n := g.n
	if n <= k+1 {
		return true
	}
	// adjacency as bitmasks over the component's local indices
	adj := make([]uint64, n)
	for v := 0; v < n; v++ {
		for u := range g.adj[v] {
			adj[v] |= 1 << uint(u)
		}
	}
	full := uint64(1)<<uint(n) - 1
	memo := map[uint64]bool{}
	var solve func(remaining uint64, adjDyn []uint64) bool
	solve = func(remaining uint64, adjDyn []uint64) bool {
		if bits.OnesCount64(remaining) <= k+1 {
			return true
		}
		if res, ok := memo[remaining]; ok {
			return res
		}
		res := false
		for v := 0; v < n && !res; v++ {
			if remaining&(1<<uint(v)) == 0 {
				continue
			}
			nbrs := adjDyn[v] & remaining
			if bits.OnesCount64(nbrs) > k {
				continue
			}
			// eliminate v: clique the neighbors
			next := make([]uint64, n)
			copy(next, adjDyn)
			for u := 0; u < n; u++ {
				if nbrs&(1<<uint(u)) != 0 {
					next[u] |= nbrs &^ (1 << uint(u))
					next[u] &^= 1 << uint(v)
				}
			}
			if solve(remaining&^(1<<uint(v)), next) {
				res = true
			}
		}
		memo[remaining] = res
		return res
	}
	return solve(full, adj)
}

// Treewidth computes the exact treewidth for small graphs (≤ 63 vertices
// per component) by binary search over TreewidthAtMost; ok is false when
// the graph is too large.
func Treewidth(g *Graph) (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	lo, hi := 0, 0
	for _, comp := range g.Components() {
		if len(comp)-1 > hi {
			hi = len(comp) - 1
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		ok, decided := TreewidthAtMost(g, mid)
		if !decided {
			return 0, false
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// Bounds returns [lower, upper] treewidth bounds using the heuristics —
// the Table 1 methodology for graphs where exact treewidth is infeasible.
func Bounds(g *Graph) (lower, upper int) {
	lower = LowerBound(g)
	upper = UpperBound(g)
	if lower > upper {
		lower = upper
	}
	return lower, upper
}

// SortedDegrees returns the degree sequence in descending order (used by
// generator tests).
func SortedDegrees(g *Graph) []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
