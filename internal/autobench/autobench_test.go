package autobench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunProducesComparableBaseline runs the three families at reduced
// size and pins the report invariants the committed baseline and the CI
// jq checks rely on: schema version, all families present, nonzero
// costs, and a >= 10x states_expanded reduction on the blowup family.
func TestRunProducesComparableBaseline(t *testing.T) {
	rep, err := Run(Config{Seed: 1, EasyTrials: 10, BlowupK: 10, HardK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version = %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	byName := map[string]*FamilyReport{}
	for _, f := range rep.Families {
		byName[f.Family] = f
	}
	for _, name := range []string{"easy-random", "adversarial-blowup", "antichain-hard"} {
		f := byName[name]
		if f == nil {
			t.Fatalf("family %s missing from report", name)
		}
		if f.Antichain.StatesExpanded == 0 || f.Classic.StatesExpanded == 0 {
			t.Fatalf("%s: zero states_expanded (antichain=%d classic=%d)",
				name, f.Antichain.StatesExpanded, f.Classic.StatesExpanded)
		}
		if f.Antichain.ProductStates == 0 || f.Classic.ProductStates == 0 {
			t.Fatalf("%s: zero product_states", name)
		}
	}
	blow := byName["adversarial-blowup"]
	if blow.StatesExpandedRatio < 10 {
		t.Fatalf("blowup states_expanded_ratio = %.1f, want >= 10", blow.StatesExpandedRatio)
	}
	if blow.Antichain.AntichainPruned == 0 {
		t.Fatal("blowup family: antichain_pruned = 0, want > 0")
	}
	if blow.Antichain.TrueVerdicts != 1 || blow.Classic.TrueVerdicts != 1 {
		t.Fatalf("blowup self-containment verdicts = (%d, %d), want (1, 1)",
			blow.Antichain.TrueVerdicts, blow.Classic.TrueVerdicts)
	}

	// the report must round-trip as JSON with the committed field names
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["schema_version"]; !ok {
		t.Fatalf("serialized report lacks schema_version: %s", buf.String())
	}
	fams, ok := raw["families"].([]any)
	if !ok || len(fams) != 3 {
		t.Fatalf("serialized families = %v", raw["families"])
	}
}

// TestRunDeterministic pins seed-reproducibility of the counter totals
// (wall times vary; the counters must not).
func TestRunDeterministic(t *testing.T) {
	a, err := Run(Config{Seed: 7, EasyTrials: 8, BlowupK: 8, HardK: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 7, EasyTrials: 8, BlowupK: 8, HardK: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Families {
		fa, fb := a.Families[i], b.Families[i]
		if fa.Antichain.StatesExpanded != fb.Antichain.StatesExpanded ||
			fa.Classic.StatesExpanded != fb.Classic.StatesExpanded ||
			fa.Antichain.AntichainPruned != fb.Antichain.AntichainPruned {
			t.Fatalf("%s: counters differ across identical runs", fa.Family)
		}
	}
}
