// Package bonxai implements the pattern-based schemas of Section 4.4
// (Figure 2b), after the BonXai language of Martens, Neven, Niewerth &
// Schwentick: a schema is a list of rules φ → e, where φ is an
// ancestor-path pattern (an XPath-like expression such as a or //b//h) and
// e is a regular expression. A tree T satisfies the schema if every node v
// (1) is selected by at least one left-hand side and (2) for every rule
// whose pattern selects v, the children of v match the rule's expression.
//
// The conceptual advantage over XML Schema (Section 4.4): no explicit type
// alphabet is needed — the schema mentions only labels that occur in
// documents. The package also compiles a pattern-based schema into an
// equivalent single-type EDTD by tracking each pattern's matching state
// down the tree (a "vertical" determinization), connecting Figure 2b back
// to Figure 2a.
package bonxai

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/determinism"
	"repro/internal/edtd"
	"repro/internal/regex"
	"repro/internal/tree"
)

// Step is one location step of a pattern: a label (or "*") with a flag for
// whether a descendant gap (//) precedes it.
type Step struct {
	Label string // "*" is the wildcard
	Gap   bool   // true when reached via //
}

// Pattern is an ancestor-path pattern. It is matched against the label
// path from the root to a node (inclusive); the final step must match the
// node itself. An unanchored pattern (written without a leading /) has an
// implicit leading //.
type Pattern struct {
	Steps []Step
	src   string
}

// ParsePattern parses patterns of the forms a, /a/b, //b//h, /a//b/*.
func ParsePattern(s string) (*Pattern, error) {
	orig := s
	p := &Pattern{src: orig}
	gap := true // unanchored patterns have an implicit leading //
	switch {
	case strings.HasPrefix(s, "//"):
		s = s[2:]
	case strings.HasPrefix(s, "/"):
		s = s[1:]
		gap = false
	}
	for {
		i := strings.IndexByte(s, '/')
		var lab string
		if i < 0 {
			lab, s = s, ""
		} else {
			lab, s = s[:i], s[i:]
		}
		if lab == "" {
			return nil, fmt.Errorf("bonxai: empty step in pattern %q", orig)
		}
		p.Steps = append(p.Steps, Step{Label: lab, Gap: gap})
		if s == "" {
			break
		}
		if strings.HasPrefix(s, "//") {
			gap = true
			s = s[2:]
		} else {
			gap = false
			s = s[1:]
		}
		if s == "" {
			return nil, fmt.Errorf("bonxai: trailing '/' in pattern %q", orig)
		}
	}
	return p, nil
}

// MustParsePattern panics on parse errors; for tests and literals.
func MustParsePattern(s string) *Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Pattern) String() string { return p.src }

// Matches reports whether the pattern selects the node whose root-to-node
// label path is path (root first, node last).
func (p *Pattern) Matches(path []string) bool {
	// DP over (step index, path index): ok[i][j] = steps[i:] can match
	// path[j:] ending exactly at the end. Iterative backward DP.
	n, m := len(p.Steps), len(path)
	// ok[i][j], i in 0..n, j in 0..m
	ok := make([][]bool, n+1)
	for i := range ok {
		ok[i] = make([]bool, m+1)
	}
	ok[n][m] = true
	for i := n - 1; i >= 0; i-- {
		st := p.Steps[i]
		for j := m - 1; j >= 0; j-- {
			matches := st.Label == "*" || st.Label == path[j]
			if matches && ok[i+1][j+1] {
				ok[i][j] = true
				continue
			}
			if st.Gap && ok[i][j+1] {
				// the gap can skip path[j]
				ok[i][j] = true
			}
		}
	}
	// The first step starts at position 0 if anchored; with a gap it may
	// start anywhere — encoded by Gap on the first step skipping prefixes.
	return ok[0][0]
}

// Rule is φ → e.
type Rule struct {
	Pattern *Pattern
	Expr    *regex.Expr
}

// Schema is a pattern-based schema: an ordered list of rules plus the set
// of allowed root labels (BonXai's root declaration; empty means any label
// may be the root).
type Schema struct {
	Rules []Rule
	Roots map[string]bool
}

// Root declares allowed root labels and returns the schema.
func (s *Schema) Root(labels ...string) *Schema {
	if s.Roots == nil {
		s.Roots = map[string]bool{}
	}
	for _, l := range labels {
		s.Roots[l] = true
	}
	return s
}

// Add appends the rule pattern → expr (both given textually) and returns
// the schema.
func (s *Schema) Add(pattern, expr string) *Schema {
	s.Rules = append(s.Rules, Rule{MustParsePattern(pattern), regex.MustParse(expr)})
	return s
}

func (s *Schema) String() string {
	var b strings.Builder
	for _, r := range s.Rules {
		fmt.Fprintf(&b, "%s -> %s\n", r.Pattern, r.Expr)
	}
	return b.String()
}

// Valid reports whether t satisfies the schema: every node is selected by
// some rule, and the children of each node match every selecting rule's
// expression.
func (s *Schema) Valid(t *tree.Node) bool {
	return s.Validate(t) == nil
}

// Validate explains the first violation, or returns nil.
func (s *Schema) Validate(t *tree.Node) error {
	if s.Roots != nil && !s.Roots[t.Label] {
		return fmt.Errorf("bonxai: root label %q not allowed", t.Label)
	}
	var fail error
	t.WalkPath(func(n *tree.Node, anc []string) {
		if fail != nil {
			return
		}
		path := append(append([]string{}, anc...), n.Label)
		selected := false
		for _, r := range s.Rules {
			if !r.Pattern.Matches(path) {
				continue
			}
			selected = true
			if !regex.Matches(r.Expr, n.ChildWord()) {
				fail = fmt.Errorf("bonxai: children %v of node at %s violate rule %s -> %s",
					n.ChildWord(), strings.Join(path, "/"), r.Pattern, r.Expr)
				return
			}
		}
		if !selected {
			fail = fmt.Errorf("bonxai: node at %s matched by no rule", strings.Join(path, "/"))
		}
	})
	return fail
}

// ---------------------------------------------------------------------------
// Compilation to a single-type EDTD: the "vertical" automaton.
//
// Every pattern compiles to an NFA over labels that reads root-to-node
// paths. A node's TYPE is the tuple of per-pattern reached state sets —
// deterministic in the path, so the resulting EDTD is single-type by
// construction. The content model of a type is the intersection of the
// expressions of all rules whose pattern accepts in that type, with labels
// replaced by successor types. Types where no rule accepts get the empty
// content language ∅, rejecting every node (condition (1)).
// ---------------------------------------------------------------------------

// patNFA is a pattern's path automaton; state 0 is initial, state len(Steps)
// is accepting.
type patNFA struct {
	steps []Step
}

// stepSets advances a state set by one label.
func (a *patNFA) stepSets(states map[int]bool, label string) map[int]bool {
	next := map[int]bool{}
	for q := range states {
		if q < len(a.steps) {
			st := a.steps[q]
			if st.Label == "*" || st.Label == label {
				next[q+1] = true
			}
			if st.Gap {
				// stay before step q, consuming label in the gap
				next[q] = true
			}
		}
	}
	// A gap BEFORE step q means state q can also self-loop; gaps after the
	// final step do not exist.
	return next
}

func (a *patNFA) initial() map[int]bool { return map[int]bool{0: true} }

func (a *patNFA) accepting(states map[int]bool) bool { return states[len(a.steps)] }

// ToEDTD compiles the schema into an equivalent single-type EDTD over the
// given label alphabet (the labels that documents may use; Figure 2's
// alphabet is {a,…,k}). Content expressions are synthesized from the
// intersection DFA of the selecting rules and are language-equivalent, not
// syntactically identical, to hand-written ones.
func (s *Schema) ToEDTD(alphabet []string) *edtd.EDTD {
	sort.Strings(alphabet)
	nfas := make([]*patNFA, len(s.Rules))
	for i, r := range s.Rules {
		nfas[i] = &patNFA{steps: r.Pattern.Steps}
	}
	type vstate struct {
		label string
		sets  []map[int]bool
	}
	key := func(v vstate) string {
		var b strings.Builder
		b.WriteString(v.label)
		for _, set := range v.sets {
			b.WriteByte('|')
			var qs []int
			for q := range set {
				qs = append(qs, q)
			}
			sort.Ints(qs)
			for _, q := range qs {
				fmt.Fprintf(&b, "%d,", q)
			}
		}
		return b.String()
	}
	out := edtd.New()
	seen := map[string]string{} // vstate key -> type name
	typeCounter := 0
	var build func(v vstate) string
	build = func(v vstate) string {
		k := key(v)
		if t, ok := seen[k]; ok {
			return t
		}
		typeCounter++
		typ := fmt.Sprintf("%s#%d", v.label, typeCounter)
		seen[k] = typ
		// Which rules select nodes in this vertical state?
		var selected []*regex.Expr
		for i, a := range nfas {
			if a.accepting(v.sets[i]) {
				selected = append(selected, s.Rules[i].Expr)
			}
		}
		var content *regex.Expr
		if len(selected) == 0 {
			content = regex.NewEmpty() // condition (1) fails: reject the node
		} else {
			content = intersectExprs(selected)
		}
		// Successor vertical states per label; replace labels by types.
		succType := map[string]string{}
		for _, lab := range alphabet {
			next := vstate{label: lab, sets: make([]map[int]bool, len(nfas))}
			for i, a := range nfas {
				next.sets[i] = a.stepSets(v.sets[i], lab)
			}
			// Only build successor types for labels that can occur in the
			// content language (keeps the EDTD small).
			if exprUsesLabel(content, lab) {
				succType[lab] = build(next)
			}
		}
		typed := content.Clone()
		typed.Walk(func(x *regex.Expr) {
			if x.Kind == regex.Symbol {
				if t, ok := succType[x.Sym]; ok {
					x.Sym = t
				}
			}
		})
		out.AddType(typ, v.label, typed)
		return typ
	}
	for _, lab := range alphabet {
		if s.Roots != nil && !s.Roots[lab] {
			continue
		}
		root := vstate{label: lab, sets: make([]map[int]bool, len(nfas))}
		for i, a := range nfas {
			root.sets[i] = a.stepSets(a.initial(), lab)
		}
		// If no rule selects a root labeled lab, the root type's ∅ content
		// rejects every such tree, encoding condition (1).
		typ := build(root)
		out.AddStart(typ)
	}
	return out
}

func exprUsesLabel(e *regex.Expr, lab string) bool {
	found := false
	e.Walk(func(x *regex.Expr) {
		if x.Kind == regex.Symbol && x.Sym == lab {
			found = true
		}
	})
	return found
}

// intersectExprs returns an expression for the intersection of the given
// languages, via the product DFA and state elimination.
func intersectExprs(es []*regex.Expr) *regex.Expr {
	if len(es) == 1 {
		return es[0]
	}
	d := automata.ToDFA(es[0])
	for _, e := range es[1:] {
		d = automata.Product(d, automata.ToDFA(e), true).Minimize()
	}
	return determinism.SynthesizeFromDFA(d)
}

// Figure2b returns the pattern-based schema of Figure 2b:
//
//	a      → b + c
//	b      → e d f
//	c      → e d f
//	d      → g h i
//	//b//h → j
//	//c//h → k
//
// plus leaf rules (e, f, g, i, j, k → ε) so that every node of Figure 2's
// documents is selected, as required by the semantics.
func Figure2b() *Schema {
	s := &Schema{}
	s.Add("a", "b + c").
		Add("b", "e d f").
		Add("c", "e d f").
		Add("d", "g h i").
		Add("//b//h", "j").
		Add("//c//h", "k").
		Add("e", "<eps>").
		Add("f", "<eps>").
		Add("g", "<eps>").
		Add("i", "<eps>").
		Add("j", "<eps>").
		Add("k", "<eps>").
		Root("a")
	return s
}
