package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a becomes most recent
		t.Fatal("a should be present")
	}
	c.Put("c", 3) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Len != 2 || st.Capacity != 2 {
		t.Fatalf("len/cap = %d/%d", st.Len, st.Capacity)
	}
}

func TestCounters(t *testing.T) {
	c := New(4)
	c.Get("missing")
	c.Put("k", "v")
	c.Get("k")
	c.Get("k")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, no eviction
	c.Put("c", 3)  // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("a = %v, want 10", v)
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache must always miss")
	}
	if st := c.Stats(); st.Misses != 1 || st.Len != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentSameKeyRefresh hammers one key with concurrent Put
// refreshes and Gets: refreshing an existing key must never evict, the
// final value must be one actually written, and occupancy stays 1.
func TestConcurrentSameKeyRefresh(t *testing.T) {
	c := New(8)
	const workers, rounds = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Put("hot", g*rounds+i)
				if v, ok := c.Get("hot"); ok {
					if n, isInt := v.(int); !isInt || n < 0 || n >= workers*rounds {
						t.Errorf("Get returned a value never written: %v", v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Evictions != 0 {
		t.Fatalf("same-key refreshes caused %d evictions, want 0", st.Evictions)
	}
	if st.Len != 1 {
		t.Fatalf("len = %d, want 1", st.Len)
	}
	if st.Misses > uint64(workers) {
		// only Gets racing ahead of the very first Put may miss
		t.Fatalf("misses = %d, want <= %d", st.Misses, workers)
	}
}

// TestEvictionCounterInvariant pins the accounting identity: for
// distinct-key insertions, inserts == Len + Evictions, both sequentially
// and under concurrency (every worker inserts a disjoint key range, so
// every Put is an insert).
func TestEvictionCounterInvariant(t *testing.T) {
	c := New(4)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	st := c.Stats()
	if st.Len != 4 || st.Evictions != 6 {
		t.Fatalf("len/evictions = %d/%d, want 4/6", st.Len, st.Evictions)
	}
	c.Put("k9", 99) // refresh of a resident key: no insert, no eviction
	if st := c.Stats(); st.Evictions != 6 || st.Len != 4 {
		t.Fatalf("refresh moved the counters: %+v", st)
	}

	const workers, perWorker, capacity = 8, 300, 32
	cc := New(capacity)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cc.Put(fmt.Sprintf("w%d-%d", g, i), i)
			}
		}(g)
	}
	wg.Wait()
	cst := cc.Stats()
	if cst.Len != capacity {
		t.Fatalf("len = %d, want %d", cst.Len, capacity)
	}
	if inserts := uint64(workers * perWorker); cst.Evictions != inserts-uint64(cst.Len) {
		t.Fatalf("evictions = %d, want inserts-len = %d", cst.Evictions, inserts-uint64(cst.Len))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Len > 64 {
		t.Fatalf("len %d exceeds capacity", st.Len)
	}
}
