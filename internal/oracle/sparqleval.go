package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/sparqlalg"
)

// sparqlEval cross-checks the algebra evaluator on BGP and UNION-of-BGP
// queries against brute-force enumeration of all variable assignments
// over the graph's terms. The query is built from an oracle-local mini
// AST, rendered to SPARQL text, and re-parsed — so the parser, the
// algebra evaluator, and the brute-force matcher are all exercised
// independently.
type sparqlEval struct{}

func (sparqlEval) Name() string { return "sparql-eval" }

func (sparqlEval) Description() string {
	return "sparqlalg.Eval on BGP/UNION queries vs brute-force assignment enumeration"
}

type sqTerm struct {
	isVar bool
	val   string // variable name without '?', or a prefixed-name constant
}

func (t sqTerm) String() string {
	if t.isVar {
		return "?" + t.val
	}
	return t.val
}

type sqTriple [3]sqTerm

// sqQuery is a UNION of basic graph patterns (one branch = plain BGP).
type sqQuery struct {
	branches [][]sqTriple
}

func (q *sqQuery) render() string {
	var b strings.Builder
	b.WriteString("SELECT * WHERE { ")
	branch := func(ts []sqTriple) {
		for _, t := range ts {
			fmt.Fprintf(&b, "%s %s %s . ", t[0], t[1], t[2])
		}
	}
	if len(q.branches) == 1 {
		branch(q.branches[0])
	} else {
		for i, ts := range q.branches {
			if i > 0 {
				b.WriteString("} UNION { ")
			} else {
				b.WriteString("{ ")
			}
			branch(ts)
		}
		b.WriteString("} ")
	}
	b.WriteString("}")
	return b.String()
}

var (
	sqNodes = []string{"ex:n0", "ex:n1", "ex:n2", "ex:n3"}
	sqPreds = []string{"ex:p", "ex:q"}
	sqVars  = []string{"x", "y", "z"}
)

func randomSQGraph(r *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	m := 3 + r.Intn(5)
	for i := 0; i < m; i++ {
		g.Add(sqNodes[r.Intn(len(sqNodes))], sqPreds[r.Intn(len(sqPreds))], sqNodes[r.Intn(len(sqNodes))])
	}
	return g
}

func randomSQQuery(r *rand.Rand) *sqQuery {
	term := func(pred bool) sqTerm {
		if r.Float64() < 0.5 {
			return sqTerm{isVar: true, val: sqVars[r.Intn(len(sqVars))]}
		}
		if pred {
			return sqTerm{val: sqPreds[r.Intn(len(sqPreds))]}
		}
		return sqTerm{val: sqNodes[r.Intn(len(sqNodes))]}
	}
	branch := func() []sqTriple {
		n := 1 + r.Intn(3)
		out := make([]sqTriple, n)
		for i := range out {
			out[i] = sqTriple{term(false), term(true), term(false)}
		}
		return out
	}
	q := &sqQuery{branches: [][]sqTriple{branch()}}
	if r.Float64() < 0.4 {
		q.branches = append(q.branches, branch())
	}
	return q
}

// bruteSolutions enumerates every assignment of the branch's variables
// to graph terms and keeps those under which all triple patterns are in
// the graph. Solutions are canonicalized as sorted "var=val" strings.
func bruteSolutions(g *rdf.Graph, q *sqQuery) map[string]bool {
	domainSet := map[string]bool{}
	for _, t := range g.Triples() {
		domainSet[t.S] = true
		domainSet[t.P] = true
		domainSet[t.O] = true
	}
	var domain []string
	for x := range domainSet {
		domain = append(domain, x)
	}
	sort.Strings(domain)

	out := map[string]bool{}
	for _, branch := range q.branches {
		varSet := map[string]bool{}
		var vars []string
		for _, t := range branch {
			for _, term := range t {
				if term.isVar && !varSet[term.val] {
					varSet[term.val] = true
					vars = append(vars, term.val)
				}
			}
		}
		assign := map[string]string{}
		var rec func(i int)
		rec = func(i int) {
			if i == len(vars) {
				for _, t := range branch {
					resolve := func(x sqTerm) string {
						if x.isVar {
							return assign[x.val]
						}
						return x.val
					}
					if !g.Has(resolve(t[0]), resolve(t[1]), resolve(t[2])) {
						return
					}
				}
				out[canonAssign(assign)] = true
				return
			}
			for _, v := range domain {
				assign[vars[i]] = v
				rec(i + 1)
			}
			delete(assign, vars[i])
			return
		}
		rec(0)
	}
	return out
}

func canonAssign(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, m[k])
	}
	return b.String()
}

// evalSolutions runs the production pipeline: render, parse, evaluate,
// canonicalize. An empty text return means a pipeline error, reported in
// the second value.
func evalSolutions(g *rdf.Graph, q *sqQuery) (map[string]bool, error) {
	text := q.render()
	parsed, err := sparql.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("parse %q: %w", text, err)
	}
	sols, err := sparqlalg.Eval(g, parsed)
	if err != nil {
		return nil, fmt.Errorf("eval %q: %w", text, err)
	}
	out := map[string]bool{}
	for _, s := range sols {
		out[canonAssign(map[string]string(s))] = true
	}
	return out, nil
}

func (o sparqlEval) Trial(r *rand.Rand) *Divergence {
	g := randomSQGraph(r)
	q := randomSQQuery(r)
	got, err := evalSolutions(g, q)
	if err != nil {
		return &Divergence{
			Input:  sqInput(g, q),
			Detail: fmt.Sprintf("generated query failed the parse/eval pipeline: %v", err),
		}
	}
	want := bruteSolutions(g, q)
	if !sameSet(got, want) {
		g, q = shrinkSQInstance(g, q)
		got, _ = evalSolutions(g, q)
		want = bruteSolutions(g, q)
		return &Divergence{
			Input: sqInput(g, q),
			Detail: fmt.Sprintf("sparqlalg.Eval=%v but brute-force enumeration=%v",
				setKeys(got), setKeys(want)),
		}
	}
	return nil
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func setKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sqInput(g *rdf.Graph, q *sqQuery) string {
	var ts []string
	for _, t := range g.Triples() {
		ts = append(ts, fmt.Sprintf("(%s %s %s)", t.S, t.P, t.O))
	}
	sort.Strings(ts)
	return fmt.Sprintf("query=%s graph=%s", q.render(), strings.Join(ts, " "))
}

// shrinkSQInstance drops graph triples and query patterns while the
// evaluators still disagree (pipeline errors also count as divergence).
func shrinkSQInstance(g *rdf.Graph, q *sqQuery) (*rdf.Graph, *sqQuery) {
	diverges := func(gg *rdf.Graph, qq *sqQuery) bool {
		for _, b := range qq.branches {
			if len(b) == 0 {
				return false
			}
		}
		if len(qq.branches) == 0 {
			return false
		}
		got, err := evalSolutions(gg, qq)
		if err != nil {
			return true
		}
		return !sameSet(got, bruteSolutions(gg, qq))
	}
	rebuild := func(ts []rdf.Triple) *rdf.Graph {
		out := rdf.NewGraph()
		for _, t := range ts {
			out.Add(t.S, t.P, t.O)
		}
		return out
	}
	triples := shrinkList(g.Triples(), func(ts []rdf.Triple) bool { return diverges(rebuild(ts), q) })
	g = rebuild(triples)
	for i := range q.branches {
		i := i
		q.branches[i] = shrinkList(q.branches[i], func(ts []sqTriple) bool {
			saved := q.branches[i]
			q.branches[i] = ts
			ok := diverges(g, q)
			q.branches[i] = saved
			return ok
		})
	}
	return g, q
}
