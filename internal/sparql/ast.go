// Package sparql implements a parser and analysis AST for the SPARQL
// fragment studied in Section 9 of "Towards Theory for Real-World Data":
// queries (query-type, pattern, solution-modifier) where patterns are
// built from triple patterns, property-path patterns, And, Filter, Union,
// Optional, Graph, Bind, Values, Service, Minus, (Not) Exists and
// subqueries, and solution modifiers cover Distinct/Reduced, Order By,
// Group By, Having, Limit, Offset and the aggregates.
//
// The parser is the entry point of the SHARQL-style analysis pipeline
// (internal/core): raw log strings go in, feature-flagged ASTs come out.
package sparql

import (
	"strings"

	"repro/internal/propertypath"
)

// QueryType is one of the four SPARQL query forms (Section 9).
type QueryType int

// Query forms.
const (
	Select QueryType = iota
	Ask
	Construct
	Describe
)

func (t QueryType) String() string {
	switch t {
	case Select:
		return "SELECT"
	case Ask:
		return "ASK"
	case Construct:
		return "CONSTRUCT"
	case Describe:
		return "DESCRIBE"
	}
	return "?"
}

// TermKind discriminates RDF terms in triple patterns.
type TermKind int

// Term kinds: variables (?x), IRIs (prefixed or absolute), literals,
// and blank nodes (treated as variables in the hypergraph analyses,
// Section 9.5).
const (
	TermVar TermKind = iota
	TermIRI
	TermLiteral
	TermBlank
)

// Term is an RDF term occurrence.
type Term struct {
	Kind  TermKind
	Value string
}

// IsVarLike reports whether the term acts as a variable in the canonical
// hypergraph (variables and blank nodes).
func (t Term) IsVarLike() bool { return t.Kind == TermVar || t.Kind == TermBlank }

func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return "?" + t.Value
	case TermBlank:
		return "_:" + t.Value
	case TermLiteral:
		return "\"" + t.Value + "\""
	default:
		return t.Value
	}
}

// PatternKind discriminates pattern nodes.
type PatternKind int

// Pattern node kinds, mirroring the grammar in Section 9:
// P ::= t | pp | Q | P And P | P Filter R | P Union P | P Optional P |
// Bind | Service | Values | Graph | Minus.
const (
	PGroup PatternKind = iota // conjunction (And) of children
	PTriple
	PPath // property-path pattern
	PFilter
	PUnion
	POptional
	PGraph
	PBind
	PValues
	PService
	PMinus
	PSubquery
)

// Pattern is a node of a SPARQL pattern tree.
type Pattern struct {
	Kind PatternKind
	// Children: PGroup has any number; PUnion exactly 2; POptional,
	// PGraph, PService, PMinus exactly 1.
	Subs []*Pattern
	// Triple fields (PTriple, PPath). For PPath, Path holds the parsed
	// property path.
	S, P, O Term
	Path    *propertypath.Path
	// Filter (PFilter) and Bind (PBind) expressions.
	Expr *Expr
	// Bind target variable (PBind).
	BindVar string
	// Graph/Service name (PGraph, PService).
	Name Term
	// Values (PValues): bound variables, number of rows, and the row data
	// (one entry per row per variable; empty string encodes UNDEF).
	ValuesVars []string
	ValuesRows int
	ValuesData [][]string
	// Subquery (PSubquery).
	Query *Query
	// Service SILENT flag.
	Silent bool
}

// ExprKind discriminates filter/bind expression nodes.
type ExprKind int

// Expression node kinds.
const (
	EVar ExprKind = iota
	EConst
	ECompare // =, !=, <, >, <=, >=
	EBool    // && or ||
	ENot     // !
	EArith   // + - * /
	EFunc    // function call or aggregate
	EExists  // EXISTS { P } or NOT EXISTS { P }
	EIn      // ?x IN (…)
)

// Expr is a filter/bind/select expression node.
type Expr struct {
	Kind    ExprKind
	Var     string
	Const   string
	Op      string
	Subs    []*Expr
	Func    string // upper-cased function or aggregate name
	Pattern *Pattern
	Negated bool // NOT EXISTS / NOT IN
}

// Vars returns the distinct variables of the expression, excluding those
// inside EXISTS patterns (which scope separately).
func (e *Expr) Vars() []string {
	set := map[string]bool{}
	var visit func(x *Expr)
	visit = func(x *Expr) {
		if x == nil {
			return
		}
		if x.Kind == EVar {
			set[x.Var] = true
		}
		if x.Kind == EExists {
			return
		}
		for _, s := range x.Subs {
			visit(s)
		}
	}
	visit(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

// IsSafeFilter reports whether the filter is "safe" in the Section 9.5
// sense: a unary condition on one variable, or an equality ?x = ?y.
func (e *Expr) IsSafeFilter() bool {
	vars := e.Vars()
	if len(vars) <= 1 {
		return !e.containsExists()
	}
	if len(vars) == 2 && e.Kind == ECompare && e.Op == "=" &&
		e.Subs[0].Kind == EVar && e.Subs[1].Kind == EVar {
		return true
	}
	return false
}

// IsSimpleFilter reports whether the filter is "simple": unary or binary
// (at most two variables), Section 9.5.
func (e *Expr) IsSimpleFilter() bool {
	return len(e.Vars()) <= 2 && !e.containsExists()
}

func (e *Expr) containsExists() bool {
	if e == nil {
		return false
	}
	if e.Kind == EExists {
		return true
	}
	for _, s := range e.Subs {
		if s.containsExists() {
			return true
		}
	}
	return false
}

// Aggregates lists the aggregate functions (upper-case) used in the
// expression.
func (e *Expr) Aggregates() []string {
	var out []string
	var visit func(x *Expr)
	visit = func(x *Expr) {
		if x == nil {
			return
		}
		if x.Kind == EFunc && isAggregate(x.Func) {
			out = append(out, x.Func)
		}
		for _, s := range x.Subs {
			visit(s)
		}
	}
	visit(e)
	return out
}

func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT":
		return true
	}
	return false
}

// SelectItem is one projection of a SELECT clause: a plain variable or an
// (expression AS ?var) binding.
type SelectItem struct {
	Var  string
	Expr *Expr // nil for plain variables
}

// Query is a parsed SPARQL query.
type Query struct {
	Type     QueryType
	Prefixes map[string]string

	// SELECT
	Distinct, Reduced bool
	Star              bool
	Items             []SelectItem
	// DESCRIBE targets (variables or IRIs); the overwhelming majority of
	// real DESCRIBE queries has no pattern at all (Section 9.3).
	DescribeTerms []Term

	// CONSTRUCT template (triples).
	Template []*Pattern

	// WHERE pattern; may be nil for DESCRIBE.
	Where *Pattern

	// solution modifiers
	GroupBy []string
	Having  []*Expr
	OrderBy int // number of ORDER BY conditions
	Limit   int // -1 when absent
	Offset  int // -1 when absent
}

// Walk visits every pattern node of the query (including subqueries and
// EXISTS patterns).
func (q *Query) Walk(f func(*Pattern)) {
	if q.Where != nil {
		walkPattern(q.Where, f)
	}
	for _, t := range q.Template {
		walkPattern(t, f)
	}
}

func walkPattern(p *Pattern, f func(*Pattern)) {
	f(p)
	for _, s := range p.Subs {
		walkPattern(s, f)
	}
	if p.Expr != nil {
		walkExprPatterns(p.Expr, f)
	}
	if p.Query != nil {
		p.Query.Walk(f)
	}
}

func walkExprPatterns(e *Expr, f func(*Pattern)) {
	if e == nil {
		return
	}
	if e.Kind == EExists && e.Pattern != nil {
		walkPattern(e.Pattern, f)
	}
	for _, s := range e.Subs {
		walkExprPatterns(s, f)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Canonical returns a normalized string for duplicate elimination (the
// Valid → Unique step of Table 2): whitespace-insensitive rendering of the
// parsed query. Two queries with the same Canonical string are considered
// duplicates, matching the studies' dedup-after-parse approach.
func (q *Query) Canonical() string {
	var b strings.Builder
	writeCanonical(q, &b)
	return b.String()
}
