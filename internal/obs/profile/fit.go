package profile

import "math"

// Fit is an online simple-linear-regression accumulator: y = a + b*x
// fitted by least squares over every (x, y) pair seen so far, in O(1)
// memory. The profile engine maintains one per (op, cost counter) pair
// with x = the counter's value summed over the trace and y = the trace's
// duration in milliseconds — the "theory predicts practice" line the
// paper calibrates, fitted continuously against live traffic.
//
// All state is six running sums, so fits merge and snapshot trivially
// and an Add costs a handful of multiply-adds.
type Fit struct {
	N     float64 `json:"n"`
	SumX  float64 `json:"sum_x"`
	SumY  float64 `json:"sum_y"`
	SumXX float64 `json:"sum_xx"`
	SumYY float64 `json:"sum_yy"`
	SumXY float64 `json:"sum_xy"`
}

// Add records one observation.
func (f *Fit) Add(x, y float64) {
	f.N++
	f.SumX += x
	f.SumY += y
	f.SumXX += x * x
	f.SumYY += y * y
	f.SumXY += x * y
}

// centered returns the centered second moments Sxx, Syy, Sxy.
func (f *Fit) centered() (sxx, syy, sxy float64) {
	if f.N == 0 {
		return 0, 0, 0
	}
	sxx = f.SumXX - f.SumX*f.SumX/f.N
	syy = f.SumYY - f.SumY*f.SumY/f.N
	sxy = f.SumXY - f.SumX*f.SumY/f.N
	return sxx, syy, sxy
}

// Line returns the least-squares slope and intercept. ok is false when
// fewer than two points have been seen or x has no variance (the line is
// undefined; callers must not score residuals against it).
func (f *Fit) Line() (slope, intercept float64, ok bool) {
	sxx, _, sxy := f.centered()
	if f.N < 2 || sxx <= 0 {
		return 0, 0, false
	}
	slope = sxy / sxx
	intercept = (f.SumY - slope*f.SumX) / f.N
	return slope, intercept, true
}

// R2 returns the coefficient of determination of the fitted line
// (0 when undefined or when y has no variance).
func (f *Fit) R2() float64 {
	sxx, syy, sxy := f.centered()
	if f.N < 2 || sxx <= 0 || syy <= 0 {
		return 0
	}
	r2 := (sxy * sxy) / (sxx * syy)
	if r2 > 1 { // floating-point slop on near-perfect fits
		r2 = 1
	}
	return r2
}

// Predict evaluates the fitted line at x (0, false when the line is
// undefined).
func (f *Fit) Predict(x float64) (float64, bool) {
	slope, intercept, ok := f.Line()
	if !ok {
		return 0, false
	}
	return intercept + slope*x, true
}

// ResidualStd returns the standard deviation of the fit residuals,
// sqrt(RSS / (n-2)) — the scale against which an individual residual
// becomes an anomaly score. Returns 0, false when undefined (n < 3 or a
// degenerate x).
func (f *Fit) ResidualStd() (float64, bool) {
	sxx, syy, sxy := f.centered()
	if f.N < 3 || sxx <= 0 {
		return 0, false
	}
	rss := syy - sxy*sxy/sxx
	if rss < 0 { // floating-point slop
		rss = 0
	}
	return math.Sqrt(rss / (f.N - 2)), true
}

// merge folds other into f.
func (f *Fit) merge(other *Fit) {
	f.N += other.N
	f.SumX += other.SumX
	f.SumY += other.SumY
	f.SumXX += other.SumXX
	f.SumYY += other.SumYY
	f.SumXY += other.SumXY
}
