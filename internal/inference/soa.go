// Package inference implements the schema-inference algorithms surveyed in
// Section 4.2.3 of "Towards Theory for Real-World Data": learning concise
// regular expressions from positive examples.
//
//   - InferSORE: 2T-INF (single-occurrence automaton from the sample)
//     followed by RWR rewriting into a single-occurrence regular expression,
//     after Bex, Neven, Schwentick & Tuyls ("Inference of Concise DTDs from
//     XML Data") — with the repair steps that guarantee a result on every
//     input, at the price of generalization.
//   - InferCHARE: the CRX algorithm of Bex, Neven, Schwentick &
//     Vansummeren, producing an expression that is simultaneously a SORE
//     and a sequential (chain) regular expression — the class covering over
//     90% of real-world DTD expressions.
//   - InferKORE: an iDREGEx-style learner for k-occurrence expressions for
//     increasing k. The published iDREGEx is probabilistic (Hidden Markov
//     Models); this implementation uses a deterministic occurrence-marking
//     heuristic and is documented as a simplification in DESIGN.md.
//   - InferDTD (dtdinfer.go): lifts word-level inference to trees.
//
// All inference functions maintain the learning-from-positive-data
// invariant of Definition 4.7(1): the sample is always contained in the
// language of the result.
package inference

import (
	"sort"
)

// Sample is a finite set of words over Lab (Definition 4.7). Duplicates are
// allowed and ignored.
type Sample [][]string

// Alphabet returns the sorted set of labels occurring in the sample.
func (s Sample) Alphabet() []string {
	set := map[string]bool{}
	for _, w := range s {
		for _, a := range w {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// SOA is a single-occurrence automaton (the 2T-INF automaton of Garcia &
// Vidal): one state per alphabet symbol plus a source and a sink; there is
// an edge a→b iff ab occurs as a factor of some sample word.
type SOA struct {
	// Succ maps a state to its successor set. States are labels, plus the
	// virtual "⊢" (source) and "⊣" (sink).
	Succ map[string]map[string]bool
}

// Source and Sink are the virtual states of an SOA.
const (
	Source = "⊢"
	Sink   = "⊣"
)

// BuildSOA runs 2T-INF on the sample.
func BuildSOA(s Sample) *SOA {
	soa := &SOA{Succ: map[string]map[string]bool{Source: {}, Sink: {}}}
	add := func(from, to string) {
		m := soa.Succ[from]
		if m == nil {
			m = map[string]bool{}
			soa.Succ[from] = m
		}
		m[to] = true
	}
	for _, w := range s {
		if len(w) == 0 {
			add(Source, Sink)
			continue
		}
		add(Source, w[0])
		for i := 0; i+1 < len(w); i++ {
			add(w[i], w[i+1])
		}
		add(w[len(w)-1], Sink)
	}
	// ensure every mentioned state has a successor map
	for _, m := range soa.Succ {
		for to := range m {
			if soa.Succ[to] == nil {
				soa.Succ[to] = map[string]bool{}
			}
		}
	}
	return soa
}

// States returns the sorted states of the SOA (including Source and Sink).
func (soa *SOA) States() []string {
	out := make([]string, 0, len(soa.Succ))
	for q := range soa.Succ {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// Pred computes the predecessor map.
func (soa *SOA) Pred() map[string]map[string]bool {
	pred := map[string]map[string]bool{}
	for q := range soa.Succ {
		pred[q] = map[string]bool{}
	}
	for q, m := range soa.Succ {
		for to := range m {
			pred[to][q] = true
		}
	}
	return pred
}

// Accepts reports whether the SOA accepts the word (used in tests: the SOA
// language always contains the sample).
func (soa *SOA) Accepts(w []string) bool {
	cur := Source
	for _, a := range w {
		if !soa.Succ[cur][a] {
			return false
		}
		cur = a
	}
	return soa.Succ[cur][Sink]
}
