package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/chare"
)

// paperFormula is the example from Appendix A:
// (x1 ∧ ¬x2 ∧ x3) ∨ (¬x1 ∧ x3 ∧ ¬x4) ∨ (x2 ∧ ¬x3 ∧ x4), n = 4, m = 3.
func paperFormula() *DNF {
	return &DNF{
		Vars: 4,
		Clauses: []Clause{
			{1, -2, 3},
			{-1, 3, -4},
			{2, -3, 4},
		},
	}
}

func TestPaperFormulaNotValid(t *testing.T) {
	// The all-false assignment satisfies no clause.
	if paperFormula().Valid() {
		t.Fatal("paper formula should not be valid")
	}
}

func TestValidBruteForce(t *testing.T) {
	valid := &DNF{Vars: 1, Clauses: []Clause{{1}, {-1}}}
	if !valid.Valid() {
		t.Error("x1 ∨ ¬x1 should be valid")
	}
	invalid := &DNF{Vars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}}
	if invalid.Valid() {
		t.Error("(x1∧x2) ∨ (¬x1∧¬x2) should not be valid")
	}
}

func TestReductionsStayInFragment(t *testing.T) {
	f := paperFormula()
	e1, e2 := f.ToOptContainment()
	c1, ok1 := chare.Parse(e1)
	c2, ok2 := chare.Parse(e2)
	if !ok1 || !ok2 {
		t.Fatal("RE(a,a?) instances are not CHAREs")
	}
	if !c1.InFragment(chare.TypeA, chare.TypeAQuestion) {
		t.Errorf("e1 fragment %s not within RE(a,a?)", c1.FragmentName())
	}
	if !c2.InFragment(chare.TypeA, chare.TypeAQuestion) {
		t.Errorf("e2 fragment %s not within RE(a,a?)", c2.FragmentName())
	}
	s1, s2 := f.ToStarContainment()
	d1, ok1 := chare.Parse(s1)
	d2, ok2 := chare.Parse(s2)
	if !ok1 || !ok2 {
		t.Fatal("RE(a,a*) instances are not CHAREs")
	}
	if !d1.InFragment(chare.TypeA, chare.TypeAStar) {
		t.Errorf("e1 fragment %s not within RE(a,a*)", d1.FragmentName())
	}
	if !d2.InFragment(chare.TypeA, chare.TypeAStar) {
		t.Errorf("e2 fragment %s not within RE(a,a*)", d2.FragmentName())
	}
}

func TestOptReductionCorrect(t *testing.T) {
	checkReduction(t, func(f *DNF) (interface{ String() string }, interface{ String() string }, bool) {
		e1, e2 := f.ToOptContainment()
		return e1, e2, automata.Contains(e1, e2)
	})
}

func TestStarReductionCorrect(t *testing.T) {
	checkReduction(t, func(f *DNF) (interface{ String() string }, interface{ String() string }, bool) {
		e1, e2 := f.ToStarContainment()
		return e1, e2, automata.Contains(e1, e2)
	})
}

func checkReduction(t *testing.T, run func(*DNF) (interface{ String() string }, interface{ String() string }, bool)) {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	formulas := []*DNF{
		paperFormula(),
		{Vars: 1, Clauses: []Clause{{1}, {-1}}},
		{Vars: 2, Clauses: []Clause{{1}, {-1}}},
		{Vars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}},
		{Vars: 2, Clauses: []Clause{{1}, {-1, 2}, {-1, -2}}},
		{Vars: 3, Clauses: []Clause{{1}, {-1}}},
	}
	// plus random small formulas
	for i := 0; i < 12; i++ {
		n := 2 + r.Intn(2)
		m := 2 + r.Intn(2)
		f := &DNF{Vars: n}
		for j := 0; j < m; j++ {
			var cl Clause
			for v := 1; v <= n; v++ {
				switch r.Intn(3) {
				case 0:
					cl = append(cl, Literal(v))
				case 1:
					cl = append(cl, Literal(-v))
				}
			}
			if len(cl) == 0 {
				cl = append(cl, Literal(1))
			}
			f.Clauses = append(f.Clauses, cl)
		}
		formulas = append(formulas, f)
	}
	for _, f := range formulas {
		want := f.Valid()
		_, _, got := run(f)
		if got != want {
			t.Errorf("reduction disagrees for %s: containment %v, validity %v", f, got, want)
		}
	}
}
