package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// CorpusKind distinguishes what a corpus holds.
type CorpusKind string

const (
	// KindTriples is an RDF triple set: duplicate-free (RDF set
	// semantics, dedup against the memtable and every committed
	// segment), indexed SPO/POS/OSP.
	KindTriples CorpusKind = "triples"
	// KindLog is an ingested query log: an append-only sequence of raw
	// lines, duplicates preserved (the log study's Total/Valid/Unique
	// counters depend on them), iterated in ingest order.
	KindLog CorpusKind = "log"
)

// Index-key layout. Every key begins with the 4-byte big-endian corpus
// id and a 1-byte index tag, so each (corpus, index) pair is one
// contiguous key range:
//
//	triples:  [id 4][idxSPO][S 10][P 10][O 10]        value empty
//	          [id 4][idxPOS][P 10][O 10][S 10]        value empty
//	          [id 4][idxOSP][O 10][S 10][P 10]        value empty
//	log:      [id 4][idxLog][seq 8 BE]                value = raw line
const (
	idxSPO byte = 0x10
	idxPOS byte = 0x11
	idxOSP byte = 0x12
	idxLog byte = 0x20
)

// ErrNoStore reports that the directory exists but holds no store (or
// does not exist at all); callers that refuse to silently fall back to
// regeneration test for it with errors.Is.
var ErrNoStore = errors.New("no store at directory")

// ErrUnknownCorpus reports a lookup of a corpus name never created.
var ErrUnknownCorpus = errors.New("unknown corpus")

// CorruptError reports that an on-disk structure failed validation —
// a committed segment or mid-log dictionary record with a bad CRC,
// wrong length, or bad magic. It is never returned for a torn tail the
// recovery path can safely truncate.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: %s: corrupt: %s", e.Path, e.Reason)
}

// IsCorrupt reports whether err (or anything it wraps) is a
// *CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// testFailpoint, when non-nil, is consulted at the named write
// boundaries (dict.append, segment.write, segment.sync,
// segment.rename); the crash-recovery battery uses it to simulate a
// crash mid-flush. Never set outside tests.
var testFailpoint func(op string) error

func failpoint(op string) error {
	if testFailpoint != nil {
		return testFailpoint(op)
	}
	return nil
}

// Corpus describes one stored corpus.
type Corpus struct {
	Name string     `json:"name"`
	Kind CorpusKind `json:"kind"`
	ID   uint32     `json:"id"`
}

// registry is the corpora.json document.
type registry struct {
	NextID  uint32   `json:"next_id"`
	Corpora []Corpus `json:"corpora"`
}

// Stats is a point-in-time summary of the store, cheap enough for a
// metrics gauge (counts come from offset-table range bounds, not full
// scans).
type Stats struct {
	Corpora      int   `json:"corpora"`
	Segments     int   `json:"segments"`
	Terms        int   `json:"terms"`
	Triples      int   `json:"triples"`
	LogLines     int   `json:"log_lines"`
	PendingKeys  int   `json:"pending_keys"`
	SegmentBytes int64 `json:"segment_bytes"`
}

// CorpusStats summarizes one corpus.
type CorpusStats struct {
	Name     string     `json:"name"`
	Kind     CorpusKind `json:"kind"`
	Entries  int        `json:"entries"`
	Segments int        `json:"segments"`
}

// Store is a persistent triple/log store rooted at one directory. All
// methods are safe for concurrent use. The zero value is unusable; use
// Open.
type Store struct {
	dir string

	mu      sync.RWMutex
	dict    *dict
	segs    []*segment
	mem     map[string][]byte // pending records, key → value
	corpora map[string]Corpus
	nextID  uint32
	nextSeg uint64
	logSeq  map[uint32]uint64 // next log sequence number per corpus id
	closed  bool
}

// Open opens the store at dir, creating the directory (and an empty
// store) if needed. It validates every committed segment and replays
// the term dictionary; leftover temp files from an interrupted flush
// are deleted (they were never committed).
func Open(dir string) (*Store, error) {
	return OpenCtx(context.Background(), dir)
}

// OpenCtx is Open under a context: when ctx carries a span, the open /
// recovery work is recorded as a store.open span with cost counters
// (segments opened, torn temp files discarded, terms replayed), so a
// server start after a crash leaves a trace of what recovery did.
func OpenCtx(ctx context.Context, dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return open(ctx, dir)
}

// OpenExisting opens the store at dir but refuses to create one: a
// missing directory or a directory with no store marker returns
// ErrNoStore. This is the read path of rwdanalyze -store-dir, which
// must fail loudly rather than regenerate.
func OpenExisting(dir string) (*Store, error) {
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("store: %s: %w", dir, ErrNoStore)
	}
	if _, err := os.Stat(filepath.Join(dir, "corpora.json")); err != nil {
		return nil, fmt.Errorf("store: %s: %w", dir, ErrNoStore)
	}
	return open(context.Background(), dir)
}

func open(ctx context.Context, dir string) (*Store, error) {
	_, span := obs.StartSpan(ctx, "store.open")
	defer span.Finish()
	span.SetAttr("dir", dir)
	tornTmp := span.Counter("torn_tmp_discarded")
	segsOpened := span.Counter("segments_opened")

	s := &Store{
		dir:     dir,
		mem:     map[string][]byte{},
		corpora: map[string]Corpus{},
		logSeq:  map[uint32]uint64{},
		nextID:  1,
	}
	if err := s.loadRegistry(); err != nil {
		return nil, err
	}
	d, err := openDict(filepath.Join(dir, "terms.dat"))
	if err != nil {
		return nil, err
	}
	s.dict = d

	entries, err := os.ReadDir(dir)
	if err != nil {
		d.close()
		return nil, err
	}
	var segPaths []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A crash mid-flush: the segment was never renamed into
			// place, so it was never committed. Remove the debris.
			os.Remove(filepath.Join(dir, name))
			tornTmp.Inc()
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"):
			segPaths = append(segPaths, name)
			if id, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 10, 64); perr == nil && id >= s.nextSeg {
				s.nextSeg = id + 1
			}
		}
	}
	sort.Strings(segPaths)
	for _, name := range segPaths {
		seg, err := openSegment(filepath.Join(dir, name))
		if err != nil {
			s.closeLocked()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		segsOpened.Inc()
	}
	if err := s.recoverLogSeqs(); err != nil {
		s.closeLocked()
		return nil, err
	}
	span.Count("terms_replayed", int64(s.dict.len()))
	span.Count("corpora_registered", int64(len(s.corpora)))
	return s, nil
}

// recoverLogSeqs rediscovers the next sequence number of every log
// corpus from the committed segments.
func (s *Store) recoverLogSeqs() error {
	for _, c := range s.corpora {
		if c.Kind != KindLog {
			continue
		}
		prefix := corpusPrefix(c.ID, idxLog)
		var next uint64
		for _, seg := range s.segs {
			n, err := seg.rangeSize(prefix, nil)
			if err != nil {
				return err
			}
			if n == 0 {
				continue
			}
			lo, err := seg.lowerBound(prefix, nil)
			if err != nil {
				return err
			}
			key, err := seg.readKey(lo + n - 1)
			if err != nil {
				return err
			}
			if len(key) != len(prefix)+8 {
				return &CorruptError{Path: seg.path, Reason: "log key has wrong width"}
			}
			if seq := binary.BigEndian.Uint64(key[len(prefix):]) + 1; seq > next {
				next = seq
			}
		}
		s.logSeq[c.ID] = next
	}
	return nil
}

func (s *Store) loadRegistry() error {
	path := filepath.Join(s.dir, "corpora.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var reg registry
	if err := json.Unmarshal(data, &reg); err != nil {
		return &CorruptError{Path: path, Reason: "corpora.json: " + err.Error()}
	}
	for _, c := range reg.Corpora {
		s.corpora[c.Name] = c
	}
	s.nextID = reg.NextID
	if s.nextID == 0 {
		s.nextID = 1
	}
	return nil
}

// saveRegistryLocked atomically rewrites corpora.json.
func (s *Store) saveRegistryLocked() error {
	reg := registry{NextID: s.nextID}
	for _, c := range s.corpora {
		reg.Corpora = append(reg.Corpora, c)
	}
	sort.Slice(reg.Corpora, func(i, j int) bool { return reg.Corpora[i].ID < reg.Corpora[j].ID })
	data, err := json.MarshalIndent(reg, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, "corpora.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(s.dir)
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes pending writes and releases every file handle. A
// second Close is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.Flush(context.Background()); err != nil {
		s.mu.Lock()
		s.closeLocked()
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Store) closeLocked() error {
	s.closed = true
	var firstErr error
	if s.dict != nil {
		if err := s.dict.close(); err != nil {
			firstErr = err
		}
		s.dict = nil
	}
	for _, seg := range s.segs {
		if err := seg.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.segs = nil
	return firstErr
}

// CreateCorpus registers a corpus. Creating an existing corpus with
// the same kind is a no-op (ingest is additive); a kind mismatch is an
// error.
func (s *Store) CreateCorpus(name string, kind CorpusKind) (Corpus, error) {
	if name == "" {
		return Corpus{}, errors.New("store: corpus name must be non-empty")
	}
	if kind != KindTriples && kind != KindLog {
		return Corpus{}, fmt.Errorf("store: unknown corpus kind %q", kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.corpora[name]; ok {
		if c.Kind != kind {
			return Corpus{}, fmt.Errorf("store: corpus %q is kind %q, not %q", name, c.Kind, kind)
		}
		return c, nil
	}
	c := Corpus{Name: name, Kind: kind, ID: s.nextID}
	s.nextID++
	s.corpora[name] = c
	if err := s.saveRegistryLocked(); err != nil {
		delete(s.corpora, name)
		s.nextID = c.ID
		return Corpus{}, err
	}
	return c, nil
}

// Corpora lists the registered corpora with their committed+pending
// entry counts, sorted by name.
func (s *Store) Corpora(ctx context.Context) ([]CorpusStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []CorpusStats
	for _, c := range s.corpora {
		n, segs, err := s.entriesLocked(c, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, CorpusStats{Name: c.Name, Kind: c.Kind, Entries: n, Segments: segs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, ctx.Err()
}

// Lookup returns the corpus registered under name.
func (s *Store) Lookup(name string) (Corpus, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.corpora[name]
	if !ok {
		return Corpus{}, fmt.Errorf("store: %q: %w", name, ErrUnknownCorpus)
	}
	return c, nil
}

// entriesLocked counts a corpus's primary-index records across the
// committed segments and the memtable, and the number of segments that
// hold at least one of them.
func (s *Store) entriesLocked(c Corpus, compared *int64) (entries, segments int, err error) {
	idx := idxSPO
	if c.Kind == KindLog {
		idx = idxLog
	}
	prefix := corpusPrefix(c.ID, idx)
	for _, seg := range s.segs {
		k, err := seg.rangeSize(prefix, compared)
		if err != nil {
			return 0, 0, err
		}
		entries += k
		if k > 0 {
			segments++
		}
	}
	for key := range s.mem {
		if strings.HasPrefix(key, string(prefix)) {
			entries++
		}
	}
	return entries, segments, nil
}

// corpusPrefix builds the [id][index] key prefix.
func corpusPrefix(id uint32, idx byte) []byte {
	p := make([]byte, 0, 5)
	p = binary.BigEndian.AppendUint32(p, id)
	return append(p, idx)
}

// tripleKeys encodes a triple under all three index orders.
func (s *Store) tripleKeys(id uint32, t rdf.Triple) (spo, pos, osp []byte) {
	es := appendTerm(nil, t.S, s.dict)
	ep := appendTerm(nil, t.P, s.dict)
	eo := appendTerm(nil, t.O, s.dict)
	spo = append(append(append(corpusPrefix(id, idxSPO), es...), ep...), eo...)
	pos = append(append(append(corpusPrefix(id, idxPOS), ep...), eo...), es...)
	osp = append(append(append(corpusPrefix(id, idxOSP), eo...), es...), ep...)
	return spo, pos, osp
}

// hasKeyLocked reports whether key exists in the memtable or any
// committed segment.
func (s *Store) hasKeyLocked(key []byte, compared *int64) (bool, error) {
	if _, ok := s.mem[string(key)]; ok {
		return true, nil
	}
	for _, seg := range s.segs {
		if _, ok, err := seg.get(key, compared); err != nil {
			return false, err
		} else if ok {
			return true, nil
		}
	}
	return false, nil
}

// IngestTriples adds triples to a triples corpus (creating it if
// needed), deduplicating against pending writes and every committed
// segment — re-ingesting an identical corpus is a no-op. It returns
// the number of new triples accepted. Writes stay in the memtable
// until Flush.
func (s *Store) IngestTriples(ctx context.Context, name string, triples []rdf.Triple) (int, error) {
	c, err := s.CreateCorpus(name, KindTriples)
	if err != nil {
		return 0, err
	}
	_, span := obs.StartSpan(ctx, "store.ingest")
	defer span.Finish()
	span.SetAttr("corpus", name)
	span.SetAttr("kind", string(KindTriples))
	added := span.Counter("triples_added")
	dups := span.Counter("dup_skipped")
	var compared int64

	s.mu.Lock()
	defer s.mu.Unlock()
	termsBefore := s.dict.len()
	n := 0
	for i, t := range triples {
		if i%scanCheckpointEvery == scanCheckpointEvery-1 {
			if err := ctx.Err(); err != nil {
				span.Counter("keys_compared").Add(compared)
				return n, err
			}
		}
		spo, pos, osp := s.tripleKeys(c.ID, t)
		ok, err := s.hasKeyLocked(spo, &compared)
		if err != nil {
			return n, err
		}
		if ok {
			dups.Inc()
			continue
		}
		s.mem[string(spo)] = nil
		s.mem[string(pos)] = nil
		s.mem[string(osp)] = nil
		added.Inc()
		n++
	}
	span.Counter("keys_compared").Add(compared)
	span.Count("terms_interned", int64(s.dict.len()-termsBefore))
	return n, nil
}

// IngestLog appends lines to a log corpus (creating it if needed).
// Log corpora keep duplicates and ingest order; each line gets the
// next sequence number. Writes stay in the memtable until Flush.
func (s *Store) IngestLog(ctx context.Context, name string, lines []string) (int, error) {
	c, err := s.CreateCorpus(name, KindLog)
	if err != nil {
		return 0, err
	}
	_, span := obs.StartSpan(ctx, "store.ingest")
	defer span.Finish()
	span.SetAttr("corpus", name)
	span.SetAttr("kind", string(KindLog))

	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.logSeq[c.ID]
	prefix := corpusPrefix(c.ID, idxLog)
	for i, line := range lines {
		if i%scanCheckpointEvery == scanCheckpointEvery-1 {
			if err := ctx.Err(); err != nil {
				s.logSeq[c.ID] = seq
				span.Count("log_lines_added", int64(i))
				return i, err
			}
		}
		key := binary.BigEndian.AppendUint64(append([]byte(nil), prefix...), seq)
		s.mem[string(key)] = []byte(line)
		seq++
	}
	s.logSeq[c.ID] = seq
	span.Count("log_lines_added", int64(len(lines)))
	return len(lines), nil
}

// Flush commits the memtable: pending dictionary terms are appended
// and synced first (so no committed segment can reference an
// unpersisted handle), then the records are written as one sorted
// segment and atomically renamed into place. Flush is the commit
// point; an empty memtable is a no-op.
func (s *Store) Flush(ctx context.Context) error {
	_, span := obs.StartSpan(ctx, "store.flush")
	defer span.Finish()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if len(s.mem) == 0 {
		return s.dict.flush()
	}
	if err := s.dict.flush(); err != nil {
		return err
	}
	recs := make([]record, 0, len(s.mem))
	var bytes int64
	for k, v := range s.mem {
		recs = append(recs, record{key: []byte(k), val: v})
		bytes += int64(len(k) + len(v))
	}
	sortRecords(recs)
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.seg", s.nextSeg))
	if err := writeSegment(path, recs); err != nil {
		return err
	}
	seg, err := openSegment(path)
	if err != nil {
		return err
	}
	s.nextSeg++
	s.segs = append(s.segs, seg)
	s.mem = map[string][]byte{}
	span.Count("records_flushed", int64(len(recs)))
	span.Count("bytes_written", bytes)
	span.Count("segments_total", int64(len(s.segs)))
	return nil
}

// Compact flushes and then merges every segment into one, dropping
// nothing (keys are unique across segments by construction; equal keys
// keep the newest value as a safety net). The merged segment is
// committed before the old ones are deleted, so a crash mid-compaction
// leaves either the old set or the new set, never less.
func (s *Store) Compact(ctx context.Context) error {
	if err := s.Flush(ctx); err != nil {
		return err
	}
	_, span := obs.StartSpan(ctx, "store.compact")
	defer span.Finish()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) <= 1 {
		return nil
	}
	var compared int64
	var recs []record
	// Newest-first so the first occurrence of a key wins, then dedup.
	for i := len(s.segs) - 1; i >= 0; i-- {
		seg := s.segs[i]
		err := seg.scanPrefix(nil, &compared, func() error { return ctx.Err() }, func(key, val []byte) bool {
			recs = append(recs, record{key: append([]byte(nil), key...), val: append([]byte(nil), val...)})
			return true
		})
		if err != nil {
			return err
		}
	}
	sortRecords(recs)
	dedup := recs[:0]
	for i, r := range recs {
		if i > 0 && string(recs[i-1].key) == string(r.key) {
			continue
		}
		dedup = append(dedup, r)
	}
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.seg", s.nextSeg))
	if err := writeSegment(path, dedup); err != nil {
		return err
	}
	merged, err := openSegment(path)
	if err != nil {
		return err
	}
	s.nextSeg++
	old := s.segs
	s.segs = []*segment{merged}
	for _, seg := range old {
		seg.close()
		os.Remove(seg.path)
	}
	span.Count("keys_compared", compared)
	span.Count("keys_merged", int64(len(recs)))
	span.Count("dup_keys_dropped", int64(len(recs)-len(dedup)))
	span.Count("records_flushed", int64(len(dedup)))
	span.Count("segments_merged", int64(len(old)))
	return nil
}

// LogLines returns every line of a log corpus in ingest order. Pending
// writes are flushed first, so the result always reflects the full
// ingested log.
func (s *Store) LogLines(ctx context.Context, name string) ([]string, error) {
	c, err := s.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != KindLog {
		return nil, fmt.Errorf("store: corpus %q is kind %q, want %q", name, c.Kind, KindLog)
	}
	if err := s.Flush(ctx); err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "store.scan")
	defer span.Finish()
	span.SetAttr("corpus", name)
	span.SetAttr("index", "log")

	s.mu.RLock()
	defer s.mu.RUnlock()
	prefix := corpusPrefix(c.ID, idxLog)
	type entry struct {
		seq  uint64
		line string
	}
	var entries []entry
	var compared int64
	checkpoint := func() error { return ctx.Err() }
	for _, seg := range s.segs {
		span.Counter("segments_scanned").Inc()
		err := seg.scanPrefix(prefix, &compared, checkpoint, func(key, val []byte) bool {
			entries = append(entries, entry{binary.BigEndian.Uint64(key[len(prefix):]), string(val)})
			return true
		})
		if err != nil {
			span.Counter("keys_compared").Add(compared)
			return nil, err
		}
	}
	span.Counter("keys_compared").Add(compared)
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.line
	}
	return out, nil
}

// Stats summarizes the store.
func (s *Store) StoreStats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Corpora:     len(s.corpora),
		Segments:    len(s.segs),
		Terms:       s.dict.len(),
		PendingKeys: len(s.mem),
	}
	for _, seg := range s.segs {
		st.SegmentBytes += segHeaderSize + int64(seg.dataLen)
	}
	for _, c := range s.corpora {
		n, _, err := s.entriesLocked(c, nil)
		if err != nil {
			return st, err
		}
		if c.Kind == KindTriples {
			st.Triples += n
		} else {
			st.LogLines += n
		}
	}
	return st, nil
}

// Verify re-validates every committed structure: segment CRCs are
// checked at open, so Verify walks every record, decodes every term,
// and confirms the three triple indexes agree. It is the deep check
// behind `rwdstore verify`.
func (s *Store) Verify(ctx context.Context) error {
	if err := s.Flush(ctx); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, c := range s.corpora {
		if c.Kind != KindTriples {
			continue
		}
		counts := map[byte]int{}
		for _, idx := range []byte{idxSPO, idxPOS, idxOSP} {
			prefix := corpusPrefix(c.ID, idx)
			for _, seg := range s.segs {
				err := seg.scanPrefix(prefix, nil, func() error { return ctx.Err() }, func(key, val []byte) bool {
					counts[idx]++
					return true
				})
				if err != nil {
					return err
				}
				// Decode every term of every SPO key.
				if idx != idxSPO {
					continue
				}
				var derr error
				err = seg.scanPrefix(prefix, nil, func() error { return ctx.Err() }, func(key, val []byte) bool {
					if len(key) != len(prefix)+3*encodedTermSize {
						derr = &CorruptError{Path: seg.path, Reason: "triple key has wrong width"}
						return false
					}
					for i := 0; i < 3; i++ {
						if _, err := decodeTerm(key[len(prefix)+i*encodedTermSize:], s.dict); err != nil {
							derr = &CorruptError{Path: seg.path, Reason: err.Error()}
							return false
						}
					}
					return true
				})
				if err != nil {
					return err
				}
				if derr != nil {
					return derr
				}
			}
		}
		if counts[idxSPO] != counts[idxPOS] || counts[idxSPO] != counts[idxOSP] {
			return &CorruptError{Path: s.dir, Reason: fmt.Sprintf(
				"corpus %q index counts disagree: spo=%d pos=%d osp=%d",
				c.Name, counts[idxSPO], counts[idxPOS], counts[idxOSP])}
		}
	}
	return nil
}
