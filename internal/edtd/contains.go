package edtd

import (
	"sort"

	"repro/internal/automata"
)

// Containment for single-type EDTDs. Section 4.3: "Problems such as
// Intersection and Containment for XML Schema or single-type EDTDs are
// known to reduce to the corresponding problems for regular expressions".
// The reduction exploits that single-type EDTDs assign types top-down
// deterministically: a node's type is a function of its root path, so two
// stEDTDs can be compared by walking reachable TYPE PAIRS and checking
// label-projected content-language containment at each pair.

// Realizable returns the set of types admitting a finite valid subtree
// (least fixpoint, as for DTDs).
func (d *EDTD) Realizable() map[string]bool {
	real := map[string]bool{}
	types := d.Types()
	for {
		changed := false
		for _, t := range types {
			if real[t] {
				continue
			}
			if restrictedNonEmptyNFA(automata.Glushkov(d.Rule(t)), real) {
				real[t] = true
				changed = true
			}
		}
		if !changed {
			return real
		}
	}
}

func restrictedNonEmptyNFA(n *automata.NFA, allowed map[string]bool) bool {
	seen := make([]bool, n.NumStates)
	stack := append([]int(nil), n.Initial...)
	for _, q := range stack {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Final[q] {
			return true
		}
		for a, ps := range n.Trans[q] {
			if !allowed[a] {
				continue
			}
			for _, p := range ps {
				if !seen[p] {
					seen[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	return false
}

// Contains decides L(d1) ⊆ L(d2) for single-type EDTDs. It panics when
// either schema is not single-type (general EDTD containment is
// EXPTIME-complete and out of scope; cf. the principled XML containment
// literature cited in Section 4.5).
func Contains(d1, d2 *EDTD) bool {
	if !d1.IsSingleType() || !d2.IsSingleType() {
		panic("edtd: Contains requires single-type EDTDs")
	}
	real1 := d1.Realizable()

	// label → unique type maps per rule are implied by single-typedness;
	// we walk pairs (t1, t2) of types assigned to the same document node.
	type pair struct{ a, b string }
	var queue []pair
	seen := map[pair]bool{}
	// roots: every realizable start type of d1 must have a start type of
	// d2 with the same label.
	for s1 := range d1.Start {
		if !real1[s1] {
			continue
		}
		found := ""
		for s2 := range d2.Start {
			if d2.Label(s2) == d1.Label(s1) {
				found = s2
				break
			}
		}
		if found == "" {
			return false
		}
		p := pair{s1, found}
		seen[p] = true
		queue = append(queue, p)
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// label-projected, realizability-restricted content of t1 must be
		// contained in the label-projected content of t2
		n1 := labelProjectedNFA(d1, p.a, real1)
		e2 := relabel(d2.Rule(p.b), d2.Mu)
		if !automata.NFAContains(n1, e2) {
			return false
		}
		// successor pairs: for each label realizable under t1, pair the
		// unique child types
		t1ByLabel := typeByLabel(d1, p.a)
		t2ByLabel := typeByLabel(d2, p.b)
		for _, lab := range reachableLabels(n1) {
			c1, ok1 := t1ByLabel[lab]
			c2, ok2 := t2ByLabel[lab]
			if !ok1 {
				continue
			}
			if !ok2 {
				// d2's content language admitted the label only if some
				// type carries it; NFAContains above would have failed
				// otherwise, so this cannot happen for single-type d2.
				return false
			}
			np := pair{c1, c2}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

// Equivalent reports L(d1) = L(d2) for single-type EDTDs.
func Equivalent(d1, d2 *EDTD) bool {
	return Contains(d1, d2) && Contains(d2, d1)
}

// labelProjectedNFA builds the Glushkov automaton of ρ(t) with types
// replaced by labels and transitions restricted to realizable types.
func labelProjectedNFA(d *EDTD, t string, real map[string]bool) *automata.NFA {
	src := automata.Glushkov(d.Rule(t))
	out := automata.NewNFA(src.NumStates)
	out.Initial = append([]int(nil), src.Initial...)
	for q := range src.Final {
		out.Final[q] = true
	}
	for q := 0; q < src.NumStates; q++ {
		for ty, ps := range src.Trans[q] {
			if !real[ty] {
				continue
			}
			for _, p := range ps {
				out.AddTransition(q, d.Label(ty), p)
			}
		}
	}
	return out
}

// typeByLabel maps each label occurring in ρ(t) to its unique type
// (single-typedness guarantees uniqueness).
func typeByLabel(d *EDTD, t string) map[string]string {
	out := map[string]string{}
	for _, ty := range d.Rule(t).Alphabet() {
		out[d.Label(ty)] = ty
	}
	return out
}

// reachableLabels lists the labels on transitions of the TRIMMED automaton
// (reachable from the initial states and co-reachable to a final state), so
// that dead alternatives do not create spurious type pairs.
func reachableLabels(n *automata.NFA) []string {
	fwd := make([]bool, n.NumStates)
	stack := append([]int(nil), n.Initial...)
	for _, q := range stack {
		fwd[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ps := range n.Trans[q] {
			for _, p := range ps {
				if !fwd[p] {
					fwd[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	rev := make([][]int, n.NumStates)
	for q := 0; q < n.NumStates; q++ {
		for _, ps := range n.Trans[q] {
			for _, p := range ps {
				rev[p] = append(rev[p], q)
			}
		}
	}
	bwd := make([]bool, n.NumStates)
	stack = stack[:0]
	for q := range n.Final {
		bwd[q] = true
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !bwd[p] {
				bwd[p] = true
				stack = append(stack, p)
			}
		}
	}
	set := map[string]bool{}
	for q := 0; q < n.NumStates; q++ {
		if !fwd[q] {
			continue
		}
		for a, ps := range n.Trans[q] {
			for _, p := range ps {
				if bwd[p] {
					set[a] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
