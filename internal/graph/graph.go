// Package graph implements undirected graphs and the treewidth machinery
// behind two parts of "Towards Theory for Real-World Data": the data-set
// treewidth study of Maniu, Senellart & Jog (Table 1 — lower and upper
// bounds for graphs too large for exact computation, which is NP-complete)
// and the query shape analysis (Table 7 — chains, stars, trees, forests,
// and treewidth ≤ 2/3 of tiny canonical query graphs, where exact
// computation is feasible).
package graph

import "sort"

// Graph is a simple undirected graph over dense integer vertices.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns a graph with n vertices 0..n-1 and no edges.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = map[int]bool{}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m / 2
}

// AddEdge inserts the undirected edge {u, v}; self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports adjacency.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbors of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for v, a := range g.adj {
		for u := range a {
			c.adj[v][u] = true
		}
	}
	return c
}

// Components returns the connected components as vertex lists.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for u := range g.adj[x] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsTree reports whether the graph is connected and acyclic. The paper's
// definition (Section 9.5): for every pair of nodes there is exactly one
// undirected path.
func (g *Graph) IsTree() bool {
	if g.n == 0 {
		return false
	}
	return len(g.Components()) == 1 && g.M() == g.n-1
}

// IsForest reports whether every connected component is a tree.
func (g *Graph) IsForest() bool {
	return g.M() == g.n-len(g.Components())
}

// IsChain reports whether the graph is a chain in the paper's sense: empty
// (a single node, length 0) or a simple path visiting all vertices.
func (g *Graph) IsChain() bool {
	if g.n == 0 {
		return false
	}
	if !g.IsTree() {
		return false
	}
	deg2 := 0
	for v := 0; v < g.n; v++ {
		switch g.Degree(v) {
		case 0:
			return g.n == 1
		case 1:
		case 2:
			deg2++
		default:
			return false
		}
	}
	return true
}

// IsStar reports whether the graph is a star in the paper's sense: a tree
// with at most one node having more than two neighbors. (Every chain is a
// star under this definition? No: a chain has no node with ≥ 3 neighbors,
// so chains satisfy it trivially — the paper's shape analysis is
// cumulative, with star ⊇ chain.)
func (g *Graph) IsStar() bool {
	if !g.IsTree() {
		return false
	}
	big := 0
	for v := 0; v < g.n; v++ {
		if g.Degree(v) >= 3 {
			big++
		}
	}
	return big <= 1
}

// HasNoEdge reports an edgeless graph.
func (g *Graph) HasNoEdge() bool { return g.M() == 0 }

// HasAtMostOneEdge reports ≤ 1 edge.
func (g *Graph) HasAtMostOneEdge() bool { return g.M() <= 1 }

// InducedSubgraph returns the subgraph induced by vertices (renumbered
// 0..len-1 in the given order).
func (g *Graph) InducedSubgraph(vertices []int) *Graph {
	idx := map[int]int{}
	for i, v := range vertices {
		idx[v] = i
	}
	sub := New(len(vertices))
	for i, v := range vertices {
		for u := range g.adj[v] {
			if j, ok := idx[u]; ok {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub
}
