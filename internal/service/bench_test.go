package service

import (
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchServer(b *testing.B, cacheSize int) *Server {
	b.Helper()
	return New(Config{CacheSize: cacheSize, Logger: log.New(io.Discard, "", 0)})
}

func doContainment(b *testing.B, s *Server, body string) int {
	req := httptest.NewRequest("POST", "/v1/containment", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code
}

// BenchmarkServeContainmentCold measures full request cost with a
// guaranteed cache miss per iteration (every request uses a fresh label,
// so canonical keys never repeat): parse + canonicalize + Glushkov +
// determinize + product + JSON round trip.
func BenchmarkServeContainmentCold(b *testing.B) {
	s := benchServer(b, b.N+1)
	bodies := make([]string, b.N)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(
			`{"engine":"regex","left":"(a|b)* x%d","right":"(a|b)* (a|b) x%d"}`, i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := doContainment(b, s, bodies[i]); code != 200 {
			b.Fatalf("code=%d", code)
		}
	}
}

// BenchmarkServeContainmentCacheHit measures the same request served
// from the verdict cache: parse + canonicalize + lookup + JSON round
// trip, skipping the decision procedure entirely.
func BenchmarkServeContainmentCacheHit(b *testing.B) {
	s := benchServer(b, 16)
	body := `{"engine":"regex","left":"(a|b)* x","right":"(a|b)* (a|b) x"}`
	if code := doContainment(b, s, body); code != 200 {
		b.Fatalf("warmup code=%d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := doContainment(b, s, body); code != 200 {
			b.Fatalf("code=%d", code)
		}
	}
	b.StopTimer()
	if st := s.CacheStats(); st.Hits < uint64(b.N) {
		b.Fatalf("hits = %d, want >= %d", st.Hits, b.N)
	}
}
