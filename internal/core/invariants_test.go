package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sparql"
)

// invariantPool mixes valid queries (with duplicates and analysis-relevant
// variety), unparseable garbage, and trigger queries for the two panic
// hooks.
var invariantPool = []string{
	"SELECT * WHERE { ?s ?p ?o . }",
	"SELECT * WHERE { ?s ?p ?o . }", // duplicate in the pool itself
	"SELECT DISTINCT ?s WHERE { ?s wdt:P31/wdt:P279* wd:Q5 . }",
	"SELECT ?s WHERE { { ?s ex:p ?o } UNION { ?s ex:q ?o } }",
	"ASK { ?x ex:p ?y . ?y ex:q ?z . FILTER(?x != ?z) }",
	"SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?y } GROUP BY ?p",
	"SELECT ?s WHERE { ?s ex:p ?o OPTIONAL { ?o ex:q ?x } }",
	"not a sparql query at all",
	"SELECT * WHERE { unterminated",
	"",
	"SELECT * WHERE { ?s <http://panic/analyze> ?o . }",
	"PANICPARSE SELECT * WHERE { ?s ?p ?o . }",
}

func installPanicHooks(t *testing.T) {
	t.Helper()
	parseHook = func(raw string) {
		if strings.Contains(raw, "PANICPARSE") {
			panic("injected parser panic")
		}
	}
	analyzeHook = func(q *sparql.Query) {
		if strings.Contains(q.Canonical(), "http://panic/analyze") {
			panic("injected battery panic")
		}
	}
	t.Cleanup(func() { parseHook, analyzeHook = nil, nil })
}

// TestCounterInvariants ingests random sequences from the pool — panics
// included — and checks the structural report invariants: Total >= Valid
// >= Unique >= 0 at the top level, and V >= U >= 0 with V <= Valid,
// U <= Unique for every Counter2 the report contains.
func TestCounterInvariants(t *testing.T) {
	installPanicHooks(t)
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		a := NewAnalyzer("invariants")
		n := 30 + r.Intn(120)
		for i := 0; i < n; i++ {
			a.Ingest(invariantPool[r.Intn(len(invariantPool))])
		}
		rep := a.Report
		if rep.Total != n {
			t.Fatalf("seed %d: Total=%d after %d ingests", seed, rep.Total, n)
		}
		if rep.Valid < rep.Unique || rep.Unique < 0 || rep.Total < rep.Valid {
			t.Fatalf("seed %d: Total=%d Valid=%d Unique=%d violates Total >= Valid >= Unique >= 0",
				seed, rep.Total, rep.Valid, rep.Unique)
		}
		forEachCounter(rep, rep, func(_ *Counter2, c Counter2) {
			if c.U < 0 || c.V < c.U {
				t.Fatalf("seed %d: counter V=%d U=%d violates V >= U >= 0", seed, c.V, c.U)
			}
			if c.V > rep.Valid || c.U > rep.Unique {
				t.Fatalf("seed %d: counter V=%d U=%d exceeds report Valid=%d Unique=%d",
					seed, c.V, c.U, rep.Valid, rep.Unique)
			}
		})
	}
}

// TestParseSafeRecovery asserts directly that a panicking parser is
// absorbed by parseSafe and surfaces as a plain parse failure.
func TestParseSafeRecovery(t *testing.T) {
	installPanicHooks(t)
	if _, _, ok := parseSafe("PANICPARSE SELECT * WHERE { ?s ?p ?o . }"); ok {
		t.Fatal("parseSafe did not absorb the injected parser panic")
	}
	if _, canon, ok := parseSafe("SELECT * WHERE { ?s ?p ?o . }"); !ok || canon == "" {
		t.Fatal("parseSafe rejected a valid query with hooks installed")
	}
	a := NewAnalyzer("recovery")
	a.Ingest("PANICPARSE SELECT * WHERE { ?s ?p ?o . }")
	if a.Report.Total != 1 || a.Report.Valid != 0 {
		t.Fatalf("panicking parse counted as valid: %+v", a.Report)
	}
}

// TestAnalyzePanicRollback pins the dedup rollback: a query whose battery
// panics must leave no trace in the dedup state, so re-ingesting it
// behaves identically, and a shard merge sees the same counts as a
// sequential run.
func TestAnalyzePanicRollback(t *testing.T) {
	installPanicHooks(t)
	a := NewAnalyzer("rollback")
	bad := "SELECT * WHERE { ?s <http://panic/analyze> ?o . }"
	a.Ingest(bad)
	a.Ingest(bad)
	a.Ingest("SELECT * WHERE { ?s ?p ?o . }")
	if a.Report.Total != 3 || a.Report.Valid != 1 || a.Report.Unique != 1 {
		t.Fatalf("rollback broken: %+v", a.Report)
	}
}
