package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs/recorder"
)

// Trace query surface: GET /v1/traces filters the flight-recorder ring
// (op=, status=, min_ms=, since=, limit=, sort=slowest|recent), GET
// /v1/traces/{id} returns one tree by the id a client read from its
// X-Trace-Id response header, and format=perfetto renders the selection
// as Chrome trace-event JSON loadable in Perfetto.

// traceEndpoint is the lightweight middleware of the trace query
// endpoints: a root span (excluded from the recorder so reading it
// never pollutes it), the X-Trace-Id header, request accounting, and
// the access log line — but no admission gate, body cap, or deadline:
// the recorder exists to diagnose a saturated server, so its reads
// must not be shed by the very saturation under diagnosis.
func (s *Server) traceEndpoint(name string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) *apiError) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		ctx, span := s.tracer.StartRoot(r.Context(), "http."+name)
		w.Header().Set("X-Trace-Id", span.TraceID())
		if aerr := h(ctx, w, r); aerr != nil {
			code = aerr.status
			writeJSON(w, code, map[string]string{"error": aerr.msg})
		}
		span.SetAttr(recorder.StatusAttr, strconv.Itoa(code))
		span.Finish()
		elapsed := time.Since(start)
		s.reqTotal.With(name, fmt.Sprintf("%d", code)).Inc()
		s.latency.With(name).Observe(elapsed.Seconds())
		s.log.Printf("level=info method=%s path=%q endpoint=%s code=%d dur_ms=%.2f remote=%q trace=%s",
			r.Method, r.URL.Path, name, code, float64(elapsed.Microseconds())/1000, r.RemoteAddr, span.TraceID())
	})
}

var errNoRecorder = &apiError{http.StatusServiceUnavailable,
	"trace recorder disabled (rwdserve started with -trace-capacity < 0)"}

// tracesResponse is the JSON shape of GET /v1/traces.
type tracesResponse struct {
	Count  int               `json:"count"`
	Traces []*recorder.Trace `json:"traces"`
	Stats  recorder.Stats    `json:"stats"`
}

func (s *Server) handleTracesQuery(ctx context.Context, w http.ResponseWriter, r *http.Request) *apiError {
	if s.flight == nil {
		return errNoRecorder
	}
	q, err := recorder.ParseQuery(r.URL.Query())
	if err != nil {
		return errBadRequest("%v", err)
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "perfetto":
	default:
		return errBadRequest("format: %q (want json or perfetto)", format)
	}
	traces := q.Apply(s.flight.Snapshot(), time.Now())
	if format == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="traces.perfetto.json"`)
		if err := recorder.WritePerfetto(w, traces); err != nil {
			s.log.Printf("level=error endpoint=traces msg=\"perfetto export\" err=%q", err)
		}
		return nil
	}
	if traces == nil {
		traces = []*recorder.Trace{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Count:  len(traces),
		Traces: traces,
		Stats:  s.flight.Stats(),
	})
	return nil
}

func (s *Server) handleTraceGet(ctx context.Context, w http.ResponseWriter, r *http.Request) *apiError {
	if s.flight == nil {
		return errNoRecorder
	}
	id := r.PathValue("id")
	t := s.flight.Get(id)
	if t == nil {
		return &apiError{http.StatusNotFound,
			fmt.Sprintf("trace %q not in the recorder (evicted, or never recorded)", id)}
	}
	writeJSON(w, http.StatusOK, t)
	return nil
}
