package core

import (
	"context"
	"strconv"
	"sync"

	"repro/internal/loggen"
	"repro/internal/obs"
)

// RunLogStudyParallel runs the log study on a bounded worker pool: sources
// fan out concurrently, and within each source the query stream is dealt
// round-robin into cfg.Workers shards that are analyzed by independent
// workers and recombined with MergeShards. Generation itself stays
// sequential per source (the replay bag makes the stream stateful), so the
// corpus — and, after merging, every report — is byte-identical to
// RunLogStudySequential at the same Config, for any worker count.
func RunLogStudyParallel(cfg Config) []*SourceReport {
	return RunLogStudyParallelCtx(context.Background(), cfg)
}

// RunLogStudyParallelCtx is RunLogStudyParallel under a (possibly
// traced) context. Each source gets a "core.source" span with
// "core.generate", per-shard "core.shard", and "core.merge" children,
// so a -trace run shows exactly where a slow study spent its time and
// how the work was distributed across shards. Reports are byte-
// identical to the untraced run at any worker count.
func RunLogStudyParallelCtx(ctx context.Context, cfg Config) []*SourceReport {
	cfg = cfg.normalized()
	sources := loggen.Sources()
	reports := make([]*SourceReport, len(sources))
	// slots caps the total number of busy goroutines — generators and
	// shard analyzers together — at cfg.Workers.
	slots := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for i, s := range sources {
		wg.Add(1)
		go func(i int, s loggen.Source) {
			defer wg.Done()
			srcCtx, span := obs.StartSpan(ctx, "core.source")
			span.SetAttr("source", s.Name)
			defer span.Finish()
			slots <- struct{}{}
			_, genSpan := obs.StartSpan(srcCtx, "core.generate")
			stream := cfg.SourceStream(i)
			genSpan.Count("queries_generated", int64(len(stream)))
			genSpan.Finish()
			<-slots
			reports[i] = analyzeSourceShards(srcCtx, s, stream, cfg.Workers, slots)
		}(i, s)
	}
	wg.Wait()
	return reports
}

// analyzeSourceShards analyzes one source's stream across shard workers,
// each throttled by the shared slot pool, and merges the shards.
func analyzeSourceShards(ctx context.Context, s loggen.Source, stream []string, shards int, slots chan struct{}) *SourceReport {
	parts := ShardSplit(stream, shards)
	analyzers := make([]*Analyzer, len(parts))
	var wg sync.WaitGroup
	for k, part := range parts {
		wg.Add(1)
		go func(k int, part []string) {
			defer wg.Done()
			slots <- struct{}{}
			defer func() { <-slots }()
			a := NewAnalyzer(s.Name)
			a.Report.Wikidata = s.Wikidata
			a.Report.Robotic = s.Robotic
			ingestShard(ctx, a, k, part)
			analyzers[k] = a
		}(k, part)
	}
	wg.Wait()
	_, mergeSpan := obs.StartSpan(ctx, "core.merge")
	mergeSpan.Count("shards", int64(len(analyzers)))
	rep := MergeShards(s.Name, analyzers)
	mergeSpan.Finish()
	return rep
}

// ingestShard pushes one shard through its analyzer under a
// "core.shard" span accounting the ingest volume and outcome. It checks
// ctx cooperatively every 512 queries: a shard whose request has ended
// (service deadline, client gone) stops ingesting instead of running to
// completion, leaving a partial — and clearly marked — report that the
// caller must discard. With a background (never-canceled) context the
// checkpoints never fire and the result is byte-identical to before.
func ingestShard(ctx context.Context, a *Analyzer, k int, part []string) {
	_, span := obs.StartSpan(ctx, "core.shard")
	defer span.Finish()
	span.SetAttr("shard", strconv.Itoa(k))
	ingested := span.Counter("queries_ingested")
	for j, q := range part {
		if j&511 == 0 && ctx.Err() != nil {
			span.SetAttr("aborted", "context")
			break
		}
		a.Ingest(q)
		ingested.Inc()
	}
	span.Count("valid", int64(a.Report.Valid))
	span.Count("unique", int64(a.Report.Unique))
}
