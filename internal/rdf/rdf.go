// Package rdf implements RDF datasets as defined in Section 7 of "Towards
// Theory for Real-World Data": sets of triples (s, p, o) with s ∈ I ∪ B,
// p ∈ I, o ∈ I ∪ B ∪ L, abstracted as edge-labeled directed graphs. The
// package provides an indexed triple store and the structural analyses of
// the practical studies in Section 7.1: degree power laws (Ding & Finin,
// Bachlechner & Strang, Fernandez et al.), predicate lists per subject,
// (s,p)→o and (p,o)→s multiplicities, and the predicate/subject and
// predicate/object overlap ratios.
package rdf

import (
	"sort"
)

// Triple is an RDF triple.
type Triple struct {
	S, P, O string
}

// Graph is an indexed set of triples. The zero value is unusable; use
// NewGraph.
type Graph struct {
	triples []Triple
	set     map[Triple]bool
	// indexes
	bySubject   map[string][]int
	byPredicate map[string][]int
	byObject    map[string][]int
	bySP        map[[2]string][]int
	byPO        map[[2]string][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		set:         map[Triple]bool{},
		bySubject:   map[string][]int{},
		byPredicate: map[string][]int{},
		byObject:    map[string][]int{},
		bySP:        map[[2]string][]int{},
		byPO:        map[[2]string][]int{},
	}
}

// Add inserts a triple (sets are duplicate-free per the RDF abstraction).
// It reports whether the triple was new.
func (g *Graph) Add(s, p, o string) bool {
	t := Triple{s, p, o}
	if g.set[t] {
		return false
	}
	g.set[t] = true
	i := len(g.triples)
	g.triples = append(g.triples, t)
	g.bySubject[s] = append(g.bySubject[s], i)
	g.byPredicate[p] = append(g.byPredicate[p], i)
	g.byObject[o] = append(g.byObject[o], i)
	g.bySP[[2]string{s, p}] = append(g.bySP[[2]string{s, p}], i)
	g.byPO[[2]string{p, o}] = append(g.byPO[[2]string{p, o}], i)
	return true
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns all triples (shared slice; callers must not mutate).
func (g *Graph) Triples() []Triple { return g.triples }

// Has reports membership.
func (g *Graph) Has(s, p, o string) bool { return g.set[Triple{s, p, o}] }

// Subjects returns the set S_G.
func (g *Graph) Subjects() []string { return keysOf(g.bySubject) }

// Predicates returns the set P_G.
func (g *Graph) Predicates() []string { return keysOf(g.byPredicate) }

// Objects returns the set O_G.
func (g *Graph) Objects() []string { return keysOf(g.byObject) }

func keysOf(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Match returns all triples matching the pattern; empty strings are
// wildcards.
func (g *Graph) Match(s, p, o string) []Triple {
	var idx []int
	switch {
	case s != "" && p != "":
		idx = g.bySP[[2]string{s, p}]
	case p != "" && o != "":
		idx = g.byPO[[2]string{p, o}]
	case s != "":
		idx = g.bySubject[s]
	case o != "":
		idx = g.byObject[o]
	case p != "":
		idx = g.byPredicate[p]
	default:
		idx = nil
		out := make([]Triple, 0, len(g.triples))
		out = append(out, g.triples...)
		return out
	}
	var out []Triple
	for _, i := range idx {
		t := g.triples[i]
		if (s == "" || t.S == s) && (p == "" || t.P == p) && (o == "" || t.O == o) {
			out = append(out, t)
		}
	}
	return out
}

// ObjectsOf returns the objects reachable from s via p.
func (g *Graph) ObjectsOf(s, p string) []string {
	var out []string
	for _, i := range g.bySP[[2]string{s, p}] {
		out = append(out, g.triples[i].O)
	}
	return out
}

// SubjectsOf returns the subjects reaching o via p.
func (g *Graph) SubjectsOf(p, o string) []string {
	var out []string
	for _, i := range g.byPO[[2]string{p, o}] {
		out = append(out, g.triples[i].S)
	}
	return out
}

// OutEdges returns the triples with subject s.
func (g *Graph) OutEdges(s string) []Triple {
	var out []Triple
	for _, i := range g.bySubject[s] {
		out = append(out, g.triples[i])
	}
	return out
}

// InEdges returns the triples with object o.
func (g *Graph) InEdges(o string) []Triple {
	var out []Triple
	for _, i := range g.byObject[o] {
		out = append(out, g.triples[i])
	}
	return out
}
