// Package obs is the observability layer of the repository: a
// context-carried span tracer with per-span cost accounting, a
// process-wide sampled slow-operation log, and process-wide cost
// counters for code paths that do not carry a context.
//
// The paper's central empirical move is instrumenting real workloads
// (850M queries, ~120 analytical tests each); obs turns our own
// decision procedures into the same kind of measurable artifact. A
// span records where the time of a request went (determinization vs.
// product search vs. merge), and its cost counters record how big the
// intermediate objects grew (subset states expanded, product states
// visited, derivative steps taken) — the quantities that the PSPACE
// complexity bounds of Section 4.2 are actually about.
//
// Design constraints, in order:
//
//  1. Disabled tracing must be almost free. Every entry point is
//     nil-safe: when no span is in the context, FromContext returns a
//     nil *Span, StartSpan returns the context unchanged, and every
//     method on a nil *Span or nil *Counter is a constant-time no-op
//     with no allocation. Hot loops hoist the counter lookup out of
//     the loop (c := span.Counter("x"); … c.Inc()), so the disabled
//     path costs one nil check per iteration
//     (BenchmarkTraceDisabledOverhead bounds it at < 5%).
//  2. Enabled tracing must be safe under the sharded pipeline:
//     children may be attached and counters bumped from many
//     goroutines concurrently (per-shard analyzers), so the span's
//     child/attr lists are mutex-guarded and counters are atomics.
//  3. The span tree must be exportable both as JSON (the service's
//     explain mode) and as an indented text dump (the CLIs' -trace
//     flag).
package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer creates root spans and receives every finished span. The zero
// value is usable; fields may only be set before the first StartRoot.
type Tracer struct {
	// OnFinish, when non-nil, observes every finished span (the service
	// uses it to feed span-duration histograms and cost counters into
	// the metrics registry). It may be called concurrently.
	OnFinish func(*Span)
	// Slow, when non-nil, receives finished spans for slow-op logging.
	Slow *SlowLog

	ids atomic.Uint64
}

// traceIDs seeds process-unique trace ids; the high bits come from the
// process start time so ids from consecutive runs do not collide in
// aggregated logs.
var traceIDs = func() *atomic.Uint64 {
	var v atomic.Uint64
	v.Store(uint64(time.Now().UnixNano()) << 16)
	return &v
}()

// StartRoot begins a new trace: a root span with a fresh trace id,
// placed into the returned context so that StartSpan calls downstream
// attach to it.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		tracer:  t,
		name:    name,
		traceID: traceIDs.Add(1),
		id:      t.ids.Add(1),
		start:   time.Now(),
	}
	return ContextWithSpan(ctx, s), s
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key, Value string
}

// Counter is a per-span (or process-wide, see Global) atomic cost
// counter. All methods are safe on a nil receiver, which is what the
// disabled path hands out.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Span is one timed operation in a trace. All methods are safe on a
// nil receiver; a nil *Span is the disabled-tracing fast path.
type Span struct {
	tracer  *Tracer
	parent  *Span
	name    string
	traceID uint64
	id      uint64
	start   time.Time

	mu       sync.Mutex
	attrs    []Attr
	counters []*Counter
	children []*Span
	dur      time.Duration
	finished bool
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Parent returns the span's parent, nil for a root span (and nil on a
// nil receiver). The flight recorder uses it to capture exactly the
// finished root spans.
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Start returns the span's start time (zero on nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// TraceID renders the trace id shared by every span of the tree
// ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x", s.traceID)
}

// Duration returns the recorded duration for a finished span, or the
// running elapsed time for a live one (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return s.dur
	}
	return time.Since(s.start)
}

// SetAttr attaches (or overwrites) a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// Counter returns the span's cost counter with the given name,
// creating it on first use. Hot loops call this once before the loop
// and Inc/Add inside it. On a nil span it returns a nil *Counter whose
// methods are no-ops.
func (s *Span) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	s.counters = append(s.counters, c)
	return c
}

// Count adds delta to the named counter (convenience for cold paths).
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.Counter(name).Add(delta)
}

// CounterValue returns the named counter's value, 0 if absent or nil.
func (s *Span) CounterValue(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		if c.name == name {
			return c.Value()
		}
	}
	return 0
}

// newChild creates and attaches a child span.
func (s *Span) newChild(name string) *Span {
	c := &Span{
		tracer:  s.tracer,
		parent:  s,
		name:    name,
		traceID: s.traceID,
		id:      s.tracer.ids.Add(1),
		start:   time.Now(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish records the span's duration (monotonic, via the runtime's
// monotonic clock reading embedded in start) and reports it to the
// tracer's OnFinish hook and slow-op log. Finish is idempotent; on a
// nil span it is a no-op.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.tracer != nil {
		if s.tracer.OnFinish != nil {
			s.tracer.OnFinish(s)
		}
		if s.tracer.Slow != nil {
			s.tracer.Slow.observe(s)
		}
	}
}

// Counters returns a name→value snapshot of the span's cost counters.
func (s *Span) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.counters))
	for _, c := range s.counters {
		out[c.name] = c.Value()
	}
	return out
}

// Node is the exportable form of a span tree: what the service returns
// for "explain": true and what the CLIs dump under -trace.
type Node struct {
	Name       string            `json:"name"`
	TraceID    string            `json:"trace_id,omitempty"` // root only
	StartUS    int64             `json:"start_us,omitempty"` // wall-clock start, unix microseconds
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Counters   map[string]int64  `json:"counters,omitempty"`
	Children   []*Node           `json:"children,omitempty"`
}

// Tree exports the span and its descendants. Live (unfinished) spans
// report their elapsed time so far. Nil spans export as nil.
func (s *Span) Tree() *Node {
	if s == nil {
		return nil
	}
	n := &Node{
		Name:       s.name,
		StartUS:    s.start.UnixMicro(),
		DurationMS: float64(s.Duration().Microseconds()) / 1000,
		Counters:   s.Counters(),
	}
	if s.parent == nil {
		n.TraceID = s.TraceID()
	}
	s.mu.Lock()
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Tree())
	}
	return n
}

// Walk visits n and every descendant in depth-first pre-order. It is
// the shared traversal of the trace consumers (flight-recorder counter
// sums, workload-profile extraction, rwdtrace's headline counters).
func (n *Node) Walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// WriteTree renders the node as an indented text tree, one span per
// line: name, duration, counters, attrs.
func WriteTree(w io.Writer, n *Node) error {
	return writeTree(w, n, 0)
}

func writeTree(w io.Writer, n *Node, depth int) error {
	if n == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Name)
	fmt.Fprintf(&b, "  %.3fms", n.DurationMS)
	if n.TraceID != "" {
		fmt.Fprintf(&b, "  trace=%s", n.TraceID)
	}
	for _, k := range sortedKeys(n.Counters) {
		fmt.Fprintf(&b, "  %s=%d", k, n.Counters[k])
	}
	for _, k := range sortedAttrKeys(n.Attrs) {
		fmt.Fprintf(&b, "  %s=%q", k, n.Attrs[k])
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAttrKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- context plumbing ----

type ctxKey struct{}

// ContextWithSpan returns a context carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil (the disabled
// fast path) when there is none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of the context's span. When the context
// carries no span — tracing disabled — it returns ctx unchanged and a
// nil span, without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.newChild(name)
	return ContextWithSpan(ctx, s), s
}
