package automata

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/regex"
)

// adversarialRight builds (a|b)* a (a|b)^n, whose Glushkov automaton
// needs 2^n subset states to determinize — the classic PSPACE-hardness
// shape a service must be able to abort.
func adversarialRight(n int) *regex.Expr {
	var b strings.Builder
	b.WriteString("(a|b)* a")
	for i := 0; i < n; i++ {
		b.WriteString(" (a|b)")
	}
	return regex.MustParse(b.String())
}

func TestContainsCtxAgreesWithContains(t *testing.T) {
	cases := [][2]string{
		{"a b", "a (b|c)"},
		{"(a|b)*", "(a|b)* (a|b)*"},
		{"a* b*", "(a|b)*"},
		{"(a|b)*", "a* b*"},
		{"b* a (b* a)*", "(a|b)* a (a|b)*"},
	}
	for _, c := range cases {
		e1, e2 := regex.MustParse(c[0]), regex.MustParse(c[1])
		want := Contains(e1, e2)
		got, err := ContainsCtx(context.Background(), e1, e2)
		if err != nil {
			t.Fatalf("ContainsCtx(%q, %q): %v", c[0], c[1], err)
		}
		if got != want {
			t.Fatalf("ContainsCtx(%q, %q) = %v, Contains = %v", c[0], c[1], got, want)
		}
	}
}

func TestContainsCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ContainsCtx(ctx, regex.MustParse("(a|b)*"), adversarialRight(20))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestContainsCtxDeadlineAbortsHardFamily(t *testing.T) {
	// The lazy engine decides (a|b)* ⊆ adversarialRight(n) instantly (a
	// counterexample sits at depth 1), so the instance that must time out
	// is self-containment of the antichain-hard family: its subset-states
	// are pairwise ⊆-incomparable, pruning never fires, and the full run
	// takes tens of seconds. The deadline must abort it instead.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	hard := regex.MustParse(AntichainHardExpr(16))
	start := time.Now()
	_, err := ContainsCtx(ctx, hard, hard)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 500ms after a 100ms deadline", elapsed)
	}
}

func TestContainsClassicCtxDeadlineAbortsBlowup(t *testing.T) {
	// The retained classic engine still determinizes eagerly; 2^26 subset
	// states cannot be materialized in 100ms and the deadline must abort
	// the determinization instead of letting it run away.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ContainsClassicCtx(ctx, regex.MustParse("(a|b)*"), adversarialRight(26))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 500ms after a 100ms deadline", elapsed)
	}
}

func TestDeterminizeCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DeterminizeCtx(ctx, Glushkov(adversarialRight(20))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestIntersectionWitnessCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	es := []*regex.Expr{adversarialRight(12), adversarialRight(13), adversarialRight(14)}
	if _, _, err := IntersectionWitnessCtx(ctx, es...); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEquivalentCtx(t *testing.T) {
	ok, err := EquivalentCtx(context.Background(), regex.MustParse("(a|b)*"), regex.MustParse("(b|a)*"))
	if err != nil || !ok {
		t.Fatalf("equivalent = %v, %v", ok, err)
	}
}

// benchInstance is a moderate containment instance — self-containment
// of the antichain-hard family at k=8, ~1500 lazily interned
// subset-states — that exercises the interner, the antichain insertion,
// and the product search without early exit (the verdict is true).
func benchInstance() (*regex.Expr, *regex.Expr) {
	hard := regex.MustParse(AntichainHardExpr(8))
	return hard, hard
}

// BenchmarkContains measures the context-free entry point; its checkpoints
// run against context.Background(), whose Err is a constant nil.
func BenchmarkContains(b *testing.B) {
	e1, e2 := benchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contains(e1, e2)
	}
}

// BenchmarkContainsCtx measures the same instance under a live cancelable
// deadline context — the production configuration of rwdserve. Comparing
// against BenchmarkContains bounds the cancellation-checkpoint overhead
// (target: < 5%).
func BenchmarkContainsCtx(b *testing.B) {
	e1, e2 := benchInstance()
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ContainsCtx(ctx, e1, e2); err != nil {
			b.Fatal(err)
		}
	}
}
