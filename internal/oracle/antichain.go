package oracle

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/automata"
	"repro/internal/regex"
)

// antichainContainment differentially tests the antichain containment
// engine (automata.ContainsCtx, the production path) against the
// retained classic engine (eager determinization + product search) and
// against sampled-word refutation. Besides random pairs it deliberately
// draws from the two calibrated adversarial families at small k — the
// determinization-blowup family, where pruning collapses the search,
// and the antichain-hard family, where pruning never fires — because
// those stress exactly the discard/evict logic a subsumption bug would
// hide in.
type antichainContainment struct{}

func (antichainContainment) Name() string { return "antichain-containment" }

func (antichainContainment) Description() string {
	return "antichain ContainsCtx vs classic eager engine vs sampled-word refutation, incl. adversarial families"
}

// antichainVerdict is the primary implementation under test; it carries
// the deliberate-mutation hook used to prove the oracle catches and
// shrinks injected bugs.
func antichainVerdict(e1, e2 *regex.Expr) bool {
	ok, _ := automata.ContainsCtx(context.Background(), e1, e2)
	if injectedBug == "antichain-containment" && posCount(e2) >= 2 {
		ok = !ok
	}
	return ok
}

// blowupExpr is (a|b)* a (a|b)^k — eager determinization needs 2^(k+1)
// subset states, the lazy engine a handful.
func blowupExpr(k int) *regex.Expr {
	var b strings.Builder
	b.WriteString("(a|b)* a")
	for i := 0; i < k; i++ {
		b.WriteString(" (a|b)")
	}
	return regex.MustParse(b.String())
}

func (o antichainContainment) Trial(r *rand.Rand) *Divergence {
	var e1, e2 *regex.Expr
	switch r.Intn(8) {
	case 0:
		// blowup family: self, against (a|b)*, and from (a|b)*
		k := 1 + r.Intn(6)
		all := regex.MustParse("(a|b)*")
		switch r.Intn(3) {
		case 0:
			e1, e2 = blowupExpr(k), blowupExpr(k)
		case 1:
			e1, e2 = blowupExpr(k), all
		default:
			e1, e2 = all, blowupExpr(k)
		}
	case 1:
		// antichain-hard family: self and cross-k (distinct window
		// lengths disagree on short words)
		k := 1 + r.Intn(4)
		e1 = regex.MustParse(automata.AntichainHardExpr(k))
		if r.Intn(2) == 0 {
			e2 = e1
		} else {
			e2 = regex.MustParse(automata.AntichainHardExpr(1 + r.Intn(4)))
		}
	default:
		g := regex.DefaultGen([]string{"a", "b"})
		g.MaxDepth = 3
		g.MaxFanout = 3
		e1, e2 = g.Random(r), g.Random(r)
		if posCount(e1) > 8 || posCount(e2) > 8 {
			// the classic reference determinizes eagerly; skip oversized
			return nil
		}
	}

	enginesDisagree := func(a, b *regex.Expr) bool {
		return antichainVerdict(a, b) != automata.ContainsClassic(a, b)
	}
	got := antichainVerdict(e1, e2)
	if want := automata.ContainsClassic(e1, e2); got != want {
		s1 := shrinkExpr(e1, func(c *regex.Expr) bool { return enginesDisagree(c, e2) })
		s2 := shrinkExpr(e2, func(c *regex.Expr) bool { return enginesDisagree(s1, c) })
		return &Divergence{
			Input: fmt.Sprintf("e1=%s e2=%s", s1, s2),
			Detail: fmt.Sprintf("antichain ContainsCtx=%v but classic engine=%v",
				antichainVerdict(s1, s2), automata.ContainsClassic(s1, s2)),
		}
	}

	// Sampled-word refutation of a positive antichain verdict: every
	// word of L(e1) must be accepted by e2.
	if got {
		for i := 0; i < 8; i++ {
			w, ok := regex.RandomWord(e1, r)
			if !ok {
				break
			}
			if !regex.Matches(e2, w) {
				return shrinkContainDivergence(e1, e2, w,
					func(a, b *regex.Expr, v []string) bool {
						return antichainVerdict(a, b) && regex.Matches(a, v) && !regex.Matches(b, v)
					},
					"antichain ContainsCtx=true refuted by a sampled word of L(e1) outside L(e2)")
			}
		}
	}

	// The equivalence built on the engine must cohere with the two
	// directed verdicts.
	back := antichainVerdict(e2, e1)
	if eq, _ := automata.EquivalentCtx(context.Background(), e1, e2); eq != (got && back) {
		return &Divergence{
			Input: fmt.Sprintf("e1=%s e2=%s", e1, e2),
			Detail: fmt.Sprintf("EquivalentCtx=%v but directed verdicts are (%v, %v)",
				eq, got, back),
		}
	}
	return nil
}
