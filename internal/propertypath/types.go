package propertypath

import (
	"fmt"
	"strings"
)

// This file implements the *type* scheme of Section 9.6 / Table 8: the
// type of a property path replaces each distinct variable or IRI by a
// letter in order of first occurrence (repeats get the same letter), and
// the table further aggregates: a type and its reverse are one row, ^a
// counts as a plain atom, and any subexpression matching a disjunction of
// at least two symbols — empirically !a, (a|!a), or (a1|…|ak) with k > 1 —
// is written as a capital A.

// TypeString canonicalizes the path to its type, e.g.
// wdt:P31/wdt:P279* has type "ab*" and wdt:P31/wdt:P31* has type "aa*".
// Inverse atoms render as the bare letter (the ^ operator is tracked
// separately by UsesInverse). Disjunctions of atoms render as 'A',
// negated property sets as 'A'.
func TypeString(p *Path) string {
	names := map[string]string{}
	var b strings.Builder
	writeType(p, names, &b, 0)
	return b.String()
}

func letterFor(iri string, names map[string]string) string {
	if l, ok := names[iri]; ok {
		return l
	}
	n := len(names)
	var l string
	if n < 26 {
		l = string(rune('a' + n))
	} else {
		l = fmt.Sprintf("a%d", n)
	}
	names[iri] = l
	return l
}

func writeType(p *Path, names map[string]string, b *strings.Builder, prec int) {
	switch p.Kind {
	case IRI:
		b.WriteString(letterFor(p.IRI, names))
	case Inverse:
		// ^a is "treated the same as a single label" (Section 9.6)
		writeType(p.Sub(), names, b, prec)
	case NegSet:
		b.WriteString("A")
	case Alt:
		// a disjunction of atoms is the class A; other disjunctions render
		// structurally
		if isAtomDisjunction(p) {
			// The table writes any disjunction of ≥ 2 atoms as A; its member
			// IRIs do not consume letters (the paper's Ab* row has b as the
			// first letter after the A).
			b.WriteString("A")
			return
		}
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, s := range p.Subs {
			if i > 0 {
				b.WriteByte('|')
			}
			writeType(s, names, b, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case Seq:
		if prec > 1 {
			b.WriteByte('(')
		}
		for _, s := range p.Subs {
			writeType(s, names, b, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case Star, Plus, Opt:
		sub := p.Sub()
		needParen := !isAtomic(sub)
		if needParen && !isAtomDisjunction(sub) {
			b.WriteByte('(')
			writeType(sub, names, b, 0)
			b.WriteByte(')')
		} else {
			writeType(sub, names, b, 3)
		}
		switch p.Kind {
		case Star:
			b.WriteByte('*')
		case Plus:
			b.WriteByte('+')
		case Opt:
			b.WriteByte('?')
		}
	}
}

func isAtomic(p *Path) bool {
	switch p.Kind {
	case IRI, NegSet:
		return true
	case Inverse:
		return isAtomic(p.Sub())
	}
	return false
}

// isAtomDisjunction recognizes the empirical A class: a disjunction of at
// least two atoms (IRIs or inverses of IRIs).
func isAtomDisjunction(p *Path) bool {
	if p.Kind == NegSet {
		return true
	}
	if p.Kind != Alt || len(p.Subs) < 2 {
		return false
	}
	for _, s := range p.Subs {
		if !isAtomic(s) {
			return false
		}
	}
	return true
}

// UsesInverse reports whether the ^ operator occurs (0.80%/2.03% of
// robotic/organic property paths).
func (p *Path) UsesInverse() bool {
	found := false
	p.Walk(func(x *Path) {
		if x.Kind == Inverse || (x.Kind == NegSet && len(x.NegInv) > 0) {
			found = true
		}
	})
	return found
}

// Table8Row is an aggregated row of Table 8.
type Table8Row string

// The rows of Table 8 (transitive rows first, then non-transitive).
const (
	RowAStar         Table8Row = "a*"
	RowABStar        Table8Row = "ab*, a+"
	RowABStarCStar   Table8Row = "ab*c*"
	RowCapAStar      Table8Row = "A*"
	RowABStarC       Table8Row = "ab*c"
	RowAStarBStar    Table8Row = "a*b*"
	RowABCStar       Table8Row = "abc*"
	RowAOptBStar     Table8Row = "a?b*"
	RowCapAPlus      Table8Row = "A+"
	RowCapABStar     Table8Row = "Ab*"
	RowOtherTrans    Table8Row = "Other transitive"
	RowSeq           Table8Row = "a1...ak"
	RowCapA          Table8Row = "A"
	RowCapAOpt       Table8Row = "A?"
	RowSeqOpt        Table8Row = "a1a2?...ak?"
	RowInverse       Table8Row = "^a"
	RowABCOpt        Table8Row = "abc?"
	RowOtherNonTrans Table8Row = "Other non-transitive"
)

// Table8Rows lists the rows in the paper's order.
var Table8Rows = []Table8Row{
	RowAStar, RowABStar, RowABStarCStar, RowCapAStar, RowABStarC,
	RowAStarBStar, RowABCStar, RowAOptBStar, RowCapAPlus, RowCapABStar,
	RowOtherTrans,
	RowSeq, RowCapA, RowCapAOpt, RowSeqOpt, RowInverse, RowABCOpt,
	RowOtherNonTrans,
}

// Classify maps a property path to its Table 8 row, applying the paper's
// aggregations: a type and its reverse share a row, ^atom counts as an
// atom (except for the bare ^a row), and disjunction subexpressions count
// as A.
func Classify(p *Path) Table8Row {
	// the bare-inverse row is special-cased before letter canonicalization
	if p.Kind == Inverse && p.Sub().Kind == IRI {
		return RowInverse
	}
	t := TypeString(p)
	if row, ok := typeToRow[t]; ok {
		return row
	}
	if rev, ok := typeToRow[reverseType(t)]; ok {
		return rev
	}
	// generic sequences
	if row, ok := classifySequence(t); ok {
		return row
	}
	if p.IsTransitive() {
		return RowOtherTrans
	}
	return RowOtherNonTrans
}

var typeToRow = map[string]Table8Row{
	"a*":    RowAStar,
	"ab*":   RowABStar,
	"a+":    RowABStar,
	"aa*":   RowABStar, // a/a* ≡ a+
	"ab*c*": RowABStarCStar,
	"A*":    RowCapAStar,
	"ab*c":  RowABStarC,
	"a*b*":  RowAStarBStar,
	"abc*":  RowABCStar,
	"a?b*":  RowAOptBStar,
	"A+":    RowCapAPlus,
	// The paper writes this row "Ab*"; with A not consuming letters, the
	// canonical type string is "Aa*".
	"Aa*": RowCapABStar,
	"a":   RowSeq,
	"A":   RowCapA,
	"A?":  RowCapAOpt,
}

// reverseType reverses a type string at the factor level ("ab*" → "a*b",
// then letters are re-canonicalized; e.g. reverse of "ab*" is "a*b" whose
// canonical form after renaming is "a*b" — the table aggregates it into
// the ab* row).
func reverseType(t string) string {
	// split into factors: letter (or A) plus optional modifier
	var factors []string
	for i := 0; i < len(t); {
		j := i + 1
		// multi-char letters (a10) — rare; consume digits
		for j < len(t) && t[j] >= '0' && t[j] <= '9' {
			j++
		}
		if j < len(t) && (t[j] == '*' || t[j] == '+' || t[j] == '?') {
			j++
		}
		factors = append(factors, t[i:j])
		i = j
	}
	// reverse and re-letter
	rename := map[byte]byte{}
	var b strings.Builder
	next := byte('a')
	for i := len(factors) - 1; i >= 0; i-- {
		f := factors[i]
		c := f[0]
		if c == 'A' {
			b.WriteString(f)
			continue
		}
		nc, ok := rename[c]
		if !ok {
			nc = next
			next++
			rename[c] = nc
		}
		b.WriteByte(nc)
		b.WriteString(f[1:])
	}
	return b.String()
}

// classifySequence recognizes the generic rows a1…ak (all distinct plain
// atoms, k ≥ 1 — the paper's most common non-transitive row at 24.26%
// Valid / 66.41% Unique) and a1 a2?…ak? (one atom followed by optional
// atoms).
func classifySequence(t string) (Table8Row, bool) {
	factors := splitFactors(t)
	if len(factors) == 0 {
		return "", false
	}
	allPlain := true
	for _, f := range factors {
		if f[0] == 'A' || len(f) > 1 && !isDigitSuffix(f[1:]) {
			allPlain = false
			break
		}
	}
	if allPlain {
		return RowSeq, true
	}
	// a1 a2? … ak?
	if len(factors) >= 2 {
		ok := factors[0][0] != 'A' && !strings.ContainsAny(factors[0], "*+?")
		for _, f := range factors[1:] {
			if f[0] == 'A' || !strings.HasSuffix(f, "?") {
				ok = false
				break
			}
		}
		if ok {
			return RowSeqOpt, true
		}
	}
	// abc? pattern: plain atoms with a final optional
	if len(factors) >= 2 {
		last := factors[len(factors)-1]
		ok := strings.HasSuffix(last, "?") && last[0] != 'A'
		for _, f := range factors[:len(factors)-1] {
			if f[0] == 'A' || strings.ContainsAny(f, "*+?") {
				ok = false
				break
			}
		}
		if ok {
			return RowABCOpt, true
		}
	}
	return "", false
}

func splitFactors(t string) []string {
	var factors []string
	for i := 0; i < len(t); {
		if t[i] == '(' || t[i] == '|' || t[i] == ')' {
			return nil // not a plain factor sequence
		}
		j := i + 1
		for j < len(t) && t[j] >= '0' && t[j] <= '9' {
			j++
		}
		if j < len(t) && (t[j] == '*' || t[j] == '+' || t[j] == '?') {
			j++
		}
		factors = append(factors, t[i:j])
		i = j
	}
	return factors
}

func isDigitSuffix(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
