package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/automata"
	"repro/internal/regex"
)

// regexMembership cross-checks four independent word-membership
// implementations: the memoized matcher (regex.Matches), Brzozowski
// derivatives (regex.MatchesDerivative), the Glushkov NFA, and the
// determinized DFA.
type regexMembership struct{}

func (regexMembership) Name() string { return "regex-membership" }

func (regexMembership) Description() string {
	return "regex.Matches vs MatchesDerivative vs Glushkov NFA vs determinized DFA on sampled and random words"
}

var memberAlphabet = []string{"a", "b", "c"}

// memberVerdicts returns the four membership verdicts for (e, w). The
// DFA verdict carries the deliberate-mutation hook used to prove the
// oracle catches and shrinks injected bugs.
func memberVerdicts(e *regex.Expr, w []string) [4]bool {
	nfa := automata.Glushkov(e)
	dfa := automata.Determinize(nfa).Accepts(w)
	if injectedBug == "regex-membership" && len(w) >= 2 {
		dfa = !dfa
	}
	return [4]bool{
		regex.Matches(e, w),
		regex.MatchesDerivative(e, w),
		nfa.Accepts(w),
		dfa,
	}
}

func memberDisagree(e *regex.Expr, w []string) bool {
	v := memberVerdicts(e, w)
	return v[0] != v[1] || v[0] != v[2] || v[0] != v[3]
}

func (o regexMembership) Trial(r *rand.Rand) *Divergence {
	g := regex.DefaultGen(memberAlphabet)
	g.MaxDepth = 4
	e := g.Random(r)
	if posCount(e) > 12 {
		// subset construction is exponential in the position count; skip
		// oversized instances (deterministically, so replay still works)
		return nil
	}
	words := memberTrialWords(e, r)
	for _, w := range words {
		if memberDisagree(e, w) {
			return shrinkMemberDivergence(e, w)
		}
	}
	return nil
}

// memberTrialWords mixes positive samples from L(e), uniform random
// words, and single-edit mutants of positive words — the mutants probe
// the accept/reject boundary where off-by-one bugs live.
func memberTrialWords(e *regex.Expr, r *rand.Rand) [][]string {
	var words [][]string
	for i := 0; i < 4; i++ {
		if w, ok := regex.RandomWord(e, r); ok {
			words = append(words, w)
		}
	}
	for i := 0; i < 4; i++ {
		w := make([]string, r.Intn(6))
		for j := range w {
			w[j] = memberAlphabet[r.Intn(len(memberAlphabet))]
		}
		words = append(words, w)
	}
	for i := 0; i < 2 && len(words) > 0; i++ {
		words = append(words, mutateWord(words[r.Intn(len(words))], r))
	}
	return words
}

func mutateWord(w []string, r *rand.Rand) []string {
	out := append([]string(nil), w...)
	switch r.Intn(3) {
	case 0: // insert
		i := r.Intn(len(out) + 1)
		out = append(out[:i], append([]string{memberAlphabet[r.Intn(len(memberAlphabet))]}, out[i:]...)...)
	case 1: // delete
		if len(out) > 0 {
			i := r.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		}
	default: // replace
		if len(out) > 0 {
			out[r.Intn(len(out))] = memberAlphabet[r.Intn(len(memberAlphabet))]
		}
	}
	return out
}

func shrinkMemberDivergence(e *regex.Expr, w []string) *Divergence {
	// alternate expression and word shrinking until neither improves
	for i := 0; i < 4; i++ {
		e2 := shrinkExpr(e, func(c *regex.Expr) bool { return memberDisagree(c, w) })
		w2 := shrinkWord(w, func(c []string) bool { return memberDisagree(e2, c) })
		if e2.Size() == e.Size() && len(w2) == len(w) {
			e, w = e2, w2
			break
		}
		e, w = e2, w2
	}
	v := memberVerdicts(e, w)
	return &Divergence{
		Input: fmt.Sprintf("expr=%s word=%q", e, strings.Join(w, " ")),
		Detail: fmt.Sprintf("Matches=%v MatchesDerivative=%v GlushkovNFA=%v DeterminizedDFA=%v",
			v[0], v[1], v[2], v[3]),
	}
}
