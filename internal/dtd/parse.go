package dtd

import (
	"fmt"
	"strings"

	"repro/internal/regex"
)

// ParseText parses a DTD from its real-world textual syntax: a sequence of
// <!ELEMENT name contentmodel> declarations (attribute-list and entity
// declarations are recognized and skipped; Sahuguet's study, Section 4.1,
// found that real DTDs are frequently erroneous — the parser therefore
// reports precise errors rather than guessing). The first declared element
// becomes the start label, matching common practice, unless rootName is
// non-empty. ANY content models expand to (a1 + … + an)* over all declared
// element names.
func ParseText(src, rootName string) (*DTD, error) {
	type decl struct{ name, model string }
	var decls []decl
	pos := 0
	for {
		i := strings.Index(src[pos:], "<!")
		if i < 0 {
			break
		}
		pos += i
		end := findDeclEnd(src, pos)
		if end < 0 {
			return nil, fmt.Errorf("dtd: unterminated declaration at offset %d", pos)
		}
		text := src[pos:end]
		pos = end + 1
		switch {
		case strings.HasPrefix(text, "<!ELEMENT"):
			body := strings.TrimSpace(text[len("<!ELEMENT"):])
			sp := strings.IndexAny(body, " \t\n\r")
			if sp < 0 {
				return nil, fmt.Errorf("dtd: malformed element declaration %q", text)
			}
			decls = append(decls, decl{body[:sp], strings.TrimSpace(body[sp:])})
		case strings.HasPrefix(text, "<!ATTLIST"), strings.HasPrefix(text, "<!ENTITY"),
			strings.HasPrefix(text, "<!NOTATION"), strings.HasPrefix(text, "<!--"):
			// skipped: outside the Definition 4.1 abstraction
		default:
			return nil, fmt.Errorf("dtd: unknown declaration %q", firstLine(text))
		}
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	names := make([]string, len(decls))
	for i, dc := range decls {
		names[i] = dc.name
	}
	d := New()
	for _, dc := range decls {
		if _, dup := d.Rules[dc.name]; dup {
			return nil, fmt.Errorf("dtd: duplicate declaration of element %s", dc.name)
		}
		e, err := regex.ParseDTDContent(dc.model, names)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %v", dc.name, err)
		}
		d.AddRule(dc.name, e)
	}
	if rootName != "" {
		d.AddStart(rootName)
	} else {
		d.AddStart(decls[0].name)
	}
	return d, nil
}

// findDeclEnd finds the '>' closing the declaration starting at pos,
// honoring comments.
func findDeclEnd(src string, pos int) int {
	if strings.HasPrefix(src[pos:], "<!--") {
		j := strings.Index(src[pos:], "-->")
		if j < 0 {
			return -1
		}
		return pos + j + 2
	}
	j := strings.IndexByte(src[pos:], '>')
	if j < 0 {
		return -1
	}
	return pos + j
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
