package automata

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/regex"
)

func words(ss ...string) [][]string {
	out := make([][]string, len(ss))
	for i, s := range ss {
		if s == "" {
			out[i] = []string{}
		} else {
			out[i] = strings.Fields(s)
		}
	}
	return out
}

func TestGlushkovAccepts(t *testing.T) {
	cases := []struct {
		re  string
		yes []string
		no  []string
	}{
		{"a", []string{"a"}, []string{"", "b", "a a"}},
		{"a*", []string{"", "a", "a a a"}, []string{"b", "a b"}},
		{"(a + b)* a", []string{"a", "b a", "a b a"}, []string{"", "b", "a b"}},
		{"b* a (b* a)*", []string{"a", "b a", "a b b a"}, []string{"", "b", "a b"}},
		{"name birthplace", []string{"name birthplace"}, []string{"name", "birthplace name"}},
		{"<empty>", nil, []string{"", "a"}},
		{"<eps>", []string{""}, []string{"a"}},
		{"a <empty> b + c", []string{"c"}, []string{"a b", ""}},
	}
	for _, c := range cases {
		n := Glushkov(regex.MustParse(c.re))
		for _, w := range words(c.yes...) {
			if !n.Accepts(w) {
				t.Errorf("Glushkov(%q) rejects %v", c.re, w)
			}
		}
		for _, w := range words(c.no...) {
			if n.Accepts(w) {
				t.Errorf("Glushkov(%q) accepts %v", c.re, w)
			}
		}
	}
}

func TestGlushkovAgreesWithMatcher(t *testing.T) {
	g := regex.DefaultGen([]string{"a", "b", "c"})
	r := rand.New(rand.NewSource(11))
	wordGen := func() []string {
		n := r.Intn(8)
		w := make([]string, n)
		for i := range w {
			w[i] = []string{"a", "b", "c"}[r.Intn(3)]
		}
		return w
	}
	for i := 0; i < 400; i++ {
		e := g.Random(r)
		n := Glushkov(e)
		d := Determinize(n)
		m := d.Minimize()
		for j := 0; j < 10; j++ {
			w := wordGen()
			want := regex.Matches(e, w)
			if got := n.Accepts(w); got != want {
				t.Fatalf("NFA(%q).Accepts(%v) = %v, oracle %v", e, w, got, want)
			}
			if got := d.Accepts(w); got != want {
				t.Fatalf("DFA(%q).Accepts(%v) = %v, oracle %v", e, w, got, want)
			}
			if got := m.Accepts(w); got != want {
				t.Fatalf("minDFA(%q).Accepts(%v) = %v, oracle %v", e, w, got, want)
			}
		}
		// words sampled from the language must be accepted
		if w, ok := regex.RandomWord(e, r); ok {
			if !m.Accepts(w) {
				t.Fatalf("minDFA(%q) rejects language word %v", e, w)
			}
		}
	}
}

func TestMinimizeCanonical(t *testing.T) {
	// Equivalent expressions must minimize to the same number of states.
	pairs := [][2]string{
		{"(a + b)* a", "b* a (b* a)*"},
		{"a a* ", "a+"},
		{"(a?)*", "a*"},
		{"a b + a c", "a (b + c)"},
	}
	for _, p := range pairs {
		d1 := ToDFA(regex.MustParse(p[0]))
		d2 := ToDFA(regex.MustParse(p[1]))
		if d1.NumStates != d2.NumStates {
			t.Errorf("minimal DFA sizes differ for %q (%d) vs %q (%d)",
				p[0], d1.NumStates, p[1], d2.NumStates)
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	g := regex.DefaultGen([]string{"a", "b"})
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		e := g.Random(r)
		m := ToDFA(e)
		m2 := m.Minimize()
		if m.NumStates != m2.NumStates {
			t.Fatalf("Minimize not idempotent on %q: %d -> %d states", e, m.NumStates, m2.NumStates)
		}
	}
}

func TestComplement(t *testing.T) {
	e := regex.MustParse("(a + b)* a")
	c := Determinize(Glushkov(e)).Complement(nil)
	for _, w := range words("", "b", "a b") {
		if !c.Accepts(w) {
			t.Errorf("complement rejects %v", w)
		}
	}
	for _, w := range words("a", "b a") {
		if c.Accepts(w) {
			t.Errorf("complement accepts %v", w)
		}
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		e1, e2 string
		want   bool
	}{
		{"a", "a + b", true},
		{"a + b", "a", false},
		{"(a + b)* a", "(a + b)*", true},
		{"b* a (b* a)*", "(a + b)* a", true},
		{"(a + b)* a", "b* a (b* a)*", true},
		{"a b", "a b?", true},
		{"a b?", "a b", false},
		{"a b?", "a b?", true},
		{"a? b?", "(a + b)?", false}, // "a b" in left only
		{"<empty>", "a", true},
		{"a", "<empty>", false},
		{"a* a b b*", "a* a b b*", true}, // the paper's a*abb*
	}
	for _, c := range cases {
		got := Contains(regex.MustParse(c.e1), regex.MustParse(c.e2))
		if got != c.want {
			t.Errorf("Contains(%q, %q) = %v, want %v", c.e1, c.e2, got, c.want)
		}
	}
}

func TestContainsRandomAgainstSampling(t *testing.T) {
	g := regex.DefaultGen([]string{"a", "b"})
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 150; i++ {
		e1 := g.Random(r)
		e2 := g.Random(r)
		if Contains(e1, e2) {
			// every sampled word of e1 must match e2
			for j := 0; j < 10; j++ {
				if w, ok := regex.RandomWord(e1, r); ok && !regex.Matches(e2, w) {
					t.Fatalf("Contains(%q,%q) true but %v not in e2", e1, e2, w)
				}
			}
		}
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(regex.MustParse("(a + b)* a"), regex.MustParse("b* a (b* a)*")) {
		t.Error("paper Section 4.2.1 equivalence failed")
	}
	if Equivalent(regex.MustParse("(a + b)* a"), regex.MustParse("(a + b)* b")) {
		t.Error("different languages reported equivalent")
	}
}

func TestIntersection(t *testing.T) {
	cases := []struct {
		es   []string
		want bool
	}{
		{[]string{"a*", "a a"}, true},
		{[]string{"a b", "a c"}, false},
		{[]string{"(a + b)*", "a*", "a a a"}, true},
		{[]string{"a+", "b+"}, false},
		{[]string{"a* b", "a a* b", "(a + b)+"}, true},
	}
	for _, c := range cases {
		var es []*regex.Expr
		for _, s := range c.es {
			es = append(es, regex.MustParse(s))
		}
		got := IntersectionNonEmpty(es...)
		if got != c.want {
			t.Errorf("IntersectionNonEmpty(%v) = %v, want %v", c.es, got, c.want)
		}
		if w, ok := IntersectionWitness(es...); ok {
			for _, e := range es {
				if !regex.Matches(e, w) {
					t.Errorf("witness %v for %v not in %q", w, c.es, e)
				}
			}
		}
	}
}

func TestShortestWitness(t *testing.T) {
	n := Glushkov(regex.MustParse("a a (b + a)"))
	w, ok := n.ShortestWitness()
	if !ok || len(w) != 3 {
		t.Errorf("ShortestWitness = %v, %v", w, ok)
	}
	if _, ok := Glushkov(regex.MustParse("<empty>")).ShortestWitness(); ok {
		t.Error("empty language has witness")
	}
	w, ok = Glushkov(regex.MustParse("a*")).ShortestWitness()
	if !ok || len(w) != 0 {
		t.Errorf("a* shortest witness = %v", w)
	}
}

func TestIsEmpty(t *testing.T) {
	if !Glushkov(regex.MustParse("<empty>")).IsEmpty() {
		t.Error("∅ not empty")
	}
	if !Glushkov(regex.MustParse("a <empty>")).IsEmpty() {
		t.Error("a∅ not empty")
	}
	if Glushkov(regex.MustParse("a?")).IsEmpty() {
		t.Error("a? empty")
	}
}

func TestDeterministicGlushkov(t *testing.T) {
	det := []string{"b* a (b* a)*", "a b c", "(a + b) c", "a* b", "city state country?"}
	nondet := []string{"(a + b)* a", "a? a", "(a b)* a"}
	for _, s := range det {
		if !Glushkov(regex.MustParse(s)).IsDeterministic() {
			t.Errorf("%q should be deterministic", s)
		}
	}
	for _, s := range nondet {
		if Glushkov(regex.MustParse(s)).IsDeterministic() {
			t.Errorf("%q should not be deterministic", s)
		}
	}
}

func TestKOREDFABound(t *testing.T) {
	// Theorem 4.6(a): a k-ORE over Σ converts to a DFA with ≤ |Σ|·2^k states
	// (we verify the spirit of the bound: states ≤ |Σ|·2^k + 2 covering the
	// initial state and sink on small random k-OREs).
	g := regex.DefaultGen([]string{"a", "b", "c"})
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		e := g.Random(r)
		k := e.MaxOccurrences()
		if k == 0 || k > 6 {
			continue
		}
		sigma := len(e.Alphabet())
		d := ToDFA(e)
		bound := sigma*(1<<uint(k)) + 2
		if d.NumStates > bound {
			t.Fatalf("DFA for %d-ORE %q has %d states > bound %d", k, e, d.NumStates, bound)
		}
	}
}
