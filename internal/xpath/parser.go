package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an XPath expression in the navigational fragment with
// abbreviations: 'a/b' (child), '//a' (descendant-or-self step), '@x'
// (attribute), '.', '..', explicit 'axis::test', predicates '[…]' with
// and/or/not, value comparisons, numbers, string literals, and a few core
// functions. Unions with '|' at top level.
func Parse(s string) (*Expr, error) {
	p := &xparser{src: s}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xpath: trailing input %q in %q", p.src[p.pos:], p.src)
	}
	return e, nil
}

// MustParse panics on error.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type xparser struct {
	src string
	pos int
}

func (p *xparser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *xparser) peekByte() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *xparser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *xparser) parseUnion() (*Expr, error) {
	first, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	e := &Expr{Paths: []*Path{first}}
	for {
		p.skip()
		if p.peekByte() != '|' {
			return e, nil
		}
		p.pos++
		next, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		e.Paths = append(e.Paths, next)
	}
}

func (p *xparser) parsePath() (*Path, error) {
	p.skip()
	path := &Path{}
	switch {
	case p.hasPrefix("//"):
		path.Absolute = true
		p.pos += 2
		path.Steps = append(path.Steps, &Step{Axis: AxisDescendantOrSelf, Test: "node()"})
	case p.peekByte() == '/':
		path.Absolute = true
		p.pos++
		if p.pos >= len(p.src) || !isStepStart(p.src[p.pos]) {
			// bare "/" selects the root
			return path, nil
		}
	}
	for {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		p.skip()
		switch {
		case p.hasPrefix("//"):
			p.pos += 2
			path.Steps = append(path.Steps, &Step{Axis: AxisDescendantOrSelf, Test: "node()"})
		case p.peekByte() == '/':
			p.pos++
		default:
			return path, nil
		}
	}
}

func isStepStart(b byte) bool {
	return b == '@' || b == '.' || b == '*' || b == '_' ||
		(b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z') || b >= 0x80
}

func (p *xparser) parseStep() (*Step, error) {
	p.skip()
	step := &Step{Axis: AxisChild}
	switch {
	case p.hasPrefix(".."):
		p.pos += 2
		step.Axis, step.Test = AxisParent, "node()"
		return p.parsePredicates(step)
	case p.peekByte() == '.':
		p.pos++
		step.Axis, step.Test = AxisSelf, "node()"
		return p.parsePredicates(step)
	case p.peekByte() == '@':
		p.pos++
		step.Axis = AxisAttribute
	}
	// explicit axis?
	save := p.pos
	name := p.parseName()
	if p.hasPrefix("::") {
		axis, ok := axisByName[name]
		if !ok {
			return nil, fmt.Errorf("xpath: unknown axis %q in %q", name, p.src)
		}
		if step.Axis == AxisAttribute {
			return nil, fmt.Errorf("xpath: '@' combined with explicit axis in %q", p.src)
		}
		step.Axis = axis
		p.pos += 2
		name = p.parseName()
		save = -1
	}
	switch {
	case name == "" && p.peekByte() == '*':
		p.pos++
		step.Test = "*"
	case name == "node" && p.hasPrefix("()"):
		p.pos += 2
		step.Test = "node()"
	case name == "text" && p.hasPrefix("()"):
		p.pos += 2
		step.Test = "text()"
	case name != "":
		if p.peekByte() == '(' {
			return nil, fmt.Errorf("xpath: unsupported node test %q() in %q", name, p.src)
		}
		step.Test = name
	default:
		if save >= 0 {
			p.pos = save
		}
		return nil, fmt.Errorf("xpath: expected step at offset %d in %q", p.pos, p.src)
	}
	return p.parsePredicates(step)
}

func (p *xparser) parseName() string {
	start := p.pos
	for p.pos < len(p.src) && isNameRune(rune(p.src[p.pos])) {
		p.pos++
	}
	s := p.src[start:p.pos]
	// '::' boundary: don't eat axis separator colons as part of name
	if i := strings.Index(s, "::"); i >= 0 {
		p.pos = start + i
		return s[:i]
	}
	return s
}

func (p *xparser) parsePredicates(step *Step) (*Step, error) {
	for {
		p.skip()
		if p.peekByte() != '[' {
			return step, nil
		}
		p.pos++
		pr, err := p.parsePredOr()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peekByte() != ']' {
			return nil, fmt.Errorf("xpath: missing ']' in %q", p.src)
		}
		p.pos++
		step.Predicates = append(step.Predicates, pr)
	}
}

func (p *xparser) parsePredOr() (*Pred, error) {
	left, err := p.parsePredAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if !p.keywordAhead("or") {
			return left, nil
		}
		p.pos += 2
		right, err := p.parsePredAnd()
		if err != nil {
			return nil, err
		}
		left = &Pred{Kind: PredOr, Subs: []*Pred{left, right}}
	}
}

func (p *xparser) parsePredAnd() (*Pred, error) {
	left, err := p.parsePredCompare()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if !p.keywordAhead("and") {
			return left, nil
		}
		p.pos += 3
		right, err := p.parsePredCompare()
		if err != nil {
			return nil, err
		}
		left = &Pred{Kind: PredAnd, Subs: []*Pred{left, right}}
	}
}

// keywordAhead reports whether the keyword occurs here as a word.
func (p *xparser) keywordAhead(kw string) bool {
	if !p.hasPrefix(kw) {
		return false
	}
	after := p.pos + len(kw)
	if after < len(p.src) && isNameRune(rune(p.src[after])) {
		return false
	}
	return true
}

var compareOps = []string{"!=", "<=", ">=", "=", "<", ">"}

func (p *xparser) parsePredCompare() (*Pred, error) {
	left, err := p.parsePredAtom()
	if err != nil {
		return nil, err
	}
	p.skip()
	for _, op := range compareOps {
		if p.hasPrefix(op) {
			p.pos += len(op)
			right, err := p.parsePredAtom()
			if err != nil {
				return nil, err
			}
			return &Pred{Kind: PredCompare, Op: op, Subs: []*Pred{left, right}}, nil
		}
	}
	return left, nil
}

func (p *xparser) parsePredAtom() (*Pred, error) {
	p.skip()
	b := p.peekByte()
	switch {
	case b == '(':
		p.pos++
		inner, err := p.parsePredOr()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peekByte() != ')' {
			return nil, fmt.Errorf("xpath: missing ')' in %q", p.src)
		}
		p.pos++
		return inner, nil
	case b == '\'' || b == '"':
		quote := b
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("xpath: unterminated literal in %q", p.src)
		}
		lit := p.src[start:p.pos]
		p.pos++
		return &Pred{Kind: PredLiteral, Literal: lit}, nil
	case b >= '0' && b <= '9':
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("xpath: bad number %q", p.src[start:p.pos])
		}
		return &Pred{Kind: PredNumber, Number: f}, nil
	}
	// not(...) and other functions — only when followed by '('
	save := p.pos
	name := p.parseName()
	if name != "" && p.peekByte() == '(' {
		p.pos++
		var args []*Pred
		p.skip()
		if p.peekByte() != ')' {
			for {
				arg, err := p.parsePredOr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				p.skip()
				if p.peekByte() == ',' {
					p.pos++
					continue
				}
				break
			}
		}
		if p.peekByte() != ')' {
			return nil, fmt.Errorf("xpath: missing ')' after %s( in %q", name, p.src)
		}
		p.pos++
		if name == "not" {
			if len(args) != 1 {
				return nil, fmt.Errorf("xpath: not() takes one argument")
			}
			return &Pred{Kind: PredNot, Subs: args}, nil
		}
		return &Pred{Kind: PredFunc, FuncName: name, Subs: args}, nil
	}
	p.pos = save
	// otherwise: a relative (or absolute) path predicate
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	return &Pred{Kind: PredPath, PathVal: path}, nil
}
