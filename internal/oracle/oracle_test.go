package oracle

import (
	"strings"
	"testing"
)

// trialsFor bounds per-oracle trial counts so the property tests stay
// fast; the rwdfuzz driver runs the same oracles with time budgets.
var trialsFor = map[string]int64{
	"regex-membership":       150,
	"regex-containment":      60,
	"antichain-containment":  80,
	"schema-containment":     40,
	"jsonschema-containment": 30,
	"propertypath-eval":      60,
	"sparql-eval":            60,
	"shard-merge":            6,
	"store-analysis":         6,
}

// TestOraclesAgree is the go-test exposure of every differential oracle:
// a fixed band of seeds must produce zero divergences.
func TestOraclesAgree(t *testing.T) {
	for _, o := range All() {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			t.Parallel()
			n, ok := trialsFor[o.Name()]
			if !ok {
				t.Fatalf("no trial budget for oracle %s; add it to trialsFor", o.Name())
			}
			for seed := int64(1); seed <= n; seed++ {
				if d := RunTrial(o, seed); d != nil {
					t.Fatalf("divergence:\n%s", d)
				}
			}
		})
	}
}

// TestRegistry pins the driver plumbing: unique names, Select round-trip,
// and the error on unknown names.
func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range All() {
		if o.Name() == "" || o.Description() == "" {
			t.Fatalf("oracle with empty name or description: %#v", o)
		}
		if seen[o.Name()] {
			t.Fatalf("duplicate oracle name %s", o.Name())
		}
		seen[o.Name()] = true
	}
	all, err := Select([]string{"all"})
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(all) = %d oracles, err=%v", len(all), err)
	}
	two, err := Select([]string{"regex-membership", "shard-merge"})
	if err != nil || len(two) != 2 {
		t.Fatalf("Select by name failed: %v", err)
	}
	if _, err := Select([]string{"no-such-oracle"}); err == nil {
		t.Fatal("Select accepted an unknown oracle name")
	}
}

// TestInjectedBugCaughtAndShrunk is the acceptance check for the whole
// subsystem: a deliberate mutation in one membership implementation must
// be caught within a modest trial band and shrunk to a minimal
// reproducer, and the reported seed must replay to the same divergence.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	SetInjectedBug("regex-membership")
	defer SetInjectedBug("")
	o, err := Select([]string{"regex-membership"})
	if err != nil {
		t.Fatal(err)
	}
	var d *Divergence
	var trials int64
	for seed := int64(1); seed <= 500; seed++ {
		trials = seed
		if d = RunTrial(o[0], seed); d != nil {
			break
		}
	}
	if d == nil {
		t.Fatal("injected bug not caught in 500 trials")
	}
	t.Logf("caught after %d trials: %s", trials, d)

	// the mutation flips the DFA verdict on words of length >= 2, so the
	// minimal reproducer is a 2-symbol word and a single-position regex
	if !strings.Contains(d.Detail, "DeterminizedDFA") {
		t.Fatalf("divergence does not implicate the mutated implementation: %s", d.Detail)
	}
	input := d.Input
	wordPart := input[strings.Index(input, "word=")+len("word="):]
	word := strings.Trim(wordPart, "\"")
	if n := len(strings.Fields(word)); n != 2 {
		t.Fatalf("reproducer word not shrunk to the minimal length 2: %q (input %s)", word, input)
	}
	exprPart := strings.TrimPrefix(input[:strings.Index(input, " word=")], "expr=")
	if len(exprPart) > 12 {
		t.Fatalf("reproducer expression not shrunk: %q", exprPart)
	}

	// replaying the reported seed must reproduce the divergence verbatim
	d2 := RunTrial(o[0], d.Seed)
	if d2 == nil || d2.Input != d.Input || d2.Detail != d.Detail {
		t.Fatalf("replay of seed %d did not reproduce the divergence:\nwant %s\ngot  %v", d.Seed, d, d2)
	}
	if !strings.Contains(d.ReplayCommand(), "rwdfuzz -oracle regex-membership -replay") {
		t.Fatalf("replay command malformed: %s", d.ReplayCommand())
	}
}

// TestTrialsDeterministic pins seed-reproducibility for every oracle:
// the same seed must not diverge on one run and agree on another.
func TestTrialsDeterministic(t *testing.T) {
	for _, o := range All() {
		for seed := int64(1); seed <= 5; seed++ {
			a, b := RunTrial(o, seed), RunTrial(o, seed)
			if (a == nil) != (b == nil) {
				t.Fatalf("%s seed %d: nondeterministic trial outcome", o.Name(), seed)
			}
			if a != nil && (a.Input != b.Input || a.Detail != b.Detail) {
				t.Fatalf("%s seed %d: nondeterministic divergence detail", o.Name(), seed)
			}
		}
	}
}

// TestShrinkers pins the shrinking helpers on known-shape predicates.
func TestShrinkers(t *testing.T) {
	w := shrinkWord([]string{"a", "b", "a", "c", "a"}, func(c []string) bool {
		n := 0
		for _, s := range c {
			if s == "a" {
				n++
			}
		}
		return n >= 2
	})
	if len(w) != 2 || w[0] != "a" || w[1] != "a" {
		t.Fatalf("shrinkWord kept %v, want [a a]", w)
	}

	xs := shrinkList([]int{5, 1, 9, 3, 9, 2}, func(c []int) bool {
		n := 0
		for _, x := range c {
			if x == 9 {
				n++
			}
		}
		return n >= 1
	})
	if len(xs) != 1 || xs[0] != 9 {
		t.Fatalf("shrinkList kept %v, want [9]", xs)
	}
}
