package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// dict is the persistent term dictionary: handle ↔ term for every term
// too long to inline into its encoded form. In memory it is two maps;
// on disk it is an append-only record log (terms.dat) with a CRC per
// record:
//
//	[marker 0xD1][handle 8B BE][len 4B BE][term bytes][crc32 4B BE]
//
// The CRC covers marker through term bytes. Recovery scans the log
// from the start; a torn final record (crash mid-append) is tolerated
// by truncating the file back to the last whole record, which is safe
// because dictionary entries are synced before any segment that
// references them (see Store.Flush) — a lost tail can only name terms
// no committed segment uses. A bad record with more records after it
// is corruption, not a torn tail, and fails the open.
type dict struct {
	mu       sync.RWMutex
	byHandle map[uint64]string
	byTerm   map[string]uint64
	// pending are interned terms not yet persisted; Store.Flush appends
	// and syncs them before committing any segment.
	pending []uint64

	path string
	f    *os.File
}

const dictMarker byte = 0xD1

// openDict loads (or creates) the dictionary log at path. A nil path
// produces a memory-only dictionary (used by tests and the fuzz
// target).
func openDict(path string) (*dict, error) {
	d := &dict{
		byHandle: map[uint64]string{},
		byTerm:   map[string]uint64{},
		path:     path,
	}
	if path == "" {
		return d, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	d.f = f
	if err := d.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// recover replays the record log, truncating a torn tail.
func (d *dict) recover() error {
	data, err := io.ReadAll(d.f)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		rec, n, err := parseDictRecord(data[off:])
		if err != nil {
			// A bad record is a torn tail only if nothing follows it
			// that parses; otherwise the middle of the log is damaged.
			if tailIsGarbage(data[off:]) {
				if terr := d.f.Truncate(int64(off)); terr != nil {
					return terr
				}
				if _, serr := d.f.Seek(int64(off), io.SeekStart); serr != nil {
					return serr
				}
				return nil
			}
			return &CorruptError{Path: d.path, Reason: fmt.Sprintf("dictionary record at offset %d: %v", off, err)}
		}
		if prev, ok := d.byHandle[rec.handle]; ok && prev != rec.term {
			return &CorruptError{Path: d.path, Reason: fmt.Sprintf("handle %016x maps to two terms", rec.handle)}
		}
		d.byHandle[rec.handle] = rec.term
		d.byTerm[rec.term] = rec.handle
		off += n
	}
	_, err = d.f.Seek(int64(off), io.SeekStart)
	return err
}

type dictRecord struct {
	handle uint64
	term   string
}

// parseDictRecord decodes one record from the front of b, returning the
// record and its encoded length.
func parseDictRecord(b []byte) (dictRecord, int, error) {
	if len(b) < 13 {
		return dictRecord{}, 0, errors.New("short record header")
	}
	if b[0] != dictMarker {
		return dictRecord{}, 0, fmt.Errorf("bad marker 0x%02x", b[0])
	}
	h := binary.BigEndian.Uint64(b[1:9])
	n := int(binary.BigEndian.Uint32(b[9:13]))
	if n < 0 || n > 1<<28 || len(b) < 13+n+4 {
		return dictRecord{}, 0, errors.New("record truncated")
	}
	want := binary.BigEndian.Uint32(b[13+n : 13+n+4])
	if crc32.ChecksumIEEE(b[:13+n]) != want {
		return dictRecord{}, 0, errors.New("crc mismatch")
	}
	return dictRecord{handle: h, term: string(b[13 : 13+n])}, 13 + n + 4, nil
}

// tailIsGarbage reports whether no whole record parses anywhere in b —
// the signature of a torn final append rather than mid-log damage.
func tailIsGarbage(b []byte) bool {
	for off := 1; off < len(b); off++ {
		if b[off] != dictMarker {
			continue
		}
		if _, _, err := parseDictRecord(b[off:]); err == nil {
			return false
		}
	}
	return true
}

// intern returns the handle for term, assigning one on first use.
// Collisions on the base FNV-1a hash are resolved by deterministic
// re-hashing, so handles preserve equality exactly.
func (d *dict) intern(term string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h, ok := d.byTerm[term]; ok {
		return h
	}
	h := fnvHash(term)
	for i := 0; ; i++ {
		prev, taken := d.byHandle[h]
		if !taken {
			break
		}
		if prev == term {
			break
		}
		h = rehash(term, i)
	}
	d.byHandle[h] = term
	d.byTerm[term] = h
	d.pending = append(d.pending, h)
	return h
}

// lookup resolves a handle.
func (d *dict) lookup(h uint64) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	term, ok := d.byHandle[h]
	return term, ok
}

// len returns the number of interned terms.
func (d *dict) len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byHandle)
}

// flush appends and syncs every pending record. It must complete
// before any segment referencing the new handles is committed.
func (d *dict) flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pending) == 0 || d.f == nil {
		d.pending = nil
		return nil
	}
	var buf []byte
	for _, h := range d.pending {
		term := d.byHandle[h]
		start := len(buf)
		buf = append(buf, dictMarker)
		buf = binary.BigEndian.AppendUint64(buf, h)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(term)))
		buf = append(buf, term...)
		buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	}
	if err := failpoint("dict.append"); err != nil {
		return err
	}
	if _, err := d.f.Write(buf); err != nil {
		return err
	}
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.pending = nil
	return nil
}

// close flushes and closes the log.
func (d *dict) close() error {
	if err := d.flush(); err != nil {
		return err
	}
	if d.f == nil {
		return nil
	}
	return d.f.Close()
}
