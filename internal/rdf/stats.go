package rdf

import (
	"math"
	"sort"
	"strings"
)

// Stats aggregates the dataset characteristics studied in Section 7.1.
type Stats struct {
	Triples    int
	Subjects   int
	Predicates int
	Objects    int

	// OutDegree and InDegree are per-node degree distributions (number of
	// triples per subject resp. object). Bachlechner & Strang observed a
	// maximum degree of 7739 against an average of 9.56 on FOAF data.
	OutDegree, InDegree Distribution

	// PredicateLists is the number of distinct predicate lists L_s
	// (Fernandez et al., Section 7.1.2); RatioSubjectsPerList is
	// |S_G| / |L_G| — "subjects almost always have the same set of labels
	// in outgoing edges, i.e., in around 99% of the cases" corresponds to
	// few lists shared by many subjects.
	PredicateLists        int
	RatioSubjectsPerList  float64
	SharedListSubjectRate float64 // fraction of subjects whose list is shared by ≥ 1% of subjects

	// MeanObjectsPerSP is the mean multiplicity of (s,p) pairs — close to
	// 1 in the study ("each pair (s, p) ... mostly related to a unique
	// object").
	MeanObjectsPerSP float64
	// MeanSubjectsPerPO and StdDevSubjectsPerPO: mean close to 1 but with
	// high standard deviation (skewed distribution).
	MeanSubjectsPerPO   float64
	StdDevSubjectsPerPO float64
	// MeanPredicatesPerObject ≈ 1: objects very often have one incoming
	// edge label.
	MeanPredicatesPerObject float64

	// PSOverlap = |P∩S| / |P∪S| and POOverlap = |P∩O| / |P∪O|
	// (Fernandez et al., Table 3: often zero, otherwise 10⁻⁷–10⁻³),
	// justifying the edge-labeled-graph abstraction.
	PSOverlap, POOverlap float64
}

// Distribution summarizes a multiset of integers.
type Distribution struct {
	Count  int
	Max    int
	Mean   float64
	Alpha  float64 // discrete power-law MLE exponent (xmin = 1)
	Values []int   // sorted ascending
}

func newDistribution(values []int) Distribution {
	d := Distribution{Count: len(values)}
	if len(values) == 0 {
		return d
	}
	sort.Ints(values)
	d.Values = values
	d.Max = values[len(values)-1]
	sum := 0
	logSum := 0.0
	for _, v := range values {
		sum += v
		if v >= 1 {
			logSum += math.Log(float64(v) / 0.5)
		}
	}
	d.Mean = float64(sum) / float64(len(values))
	if logSum > 0 {
		d.Alpha = 1 + float64(len(values))/logSum
	}
	return d
}

// ComputeStats runs the Section 7.1 analyses over any GraphReader. It
// builds its index maps locally from one pass over Triples, so it is
// backend-agnostic, and every aggregate is independent of triple
// iteration order (distributions sort, counts are commutative) — the
// store-analysis differential oracle depends on that for byte-identical
// reports across backends.
func ComputeStats(g GraphReader) *Stats {
	triples := g.Triples()
	bySubject := map[string]int{}
	byObject := map[string]int{}
	predicates := map[string]bool{}
	subjectPreds := map[string]map[string]bool{}
	objectPreds := map[string]map[string]bool{}
	bySP := map[[2]string]int{}
	byPO := map[[2]string]int{}
	for _, t := range triples {
		bySubject[t.S]++
		byObject[t.O]++
		predicates[t.P] = true
		if subjectPreds[t.S] == nil {
			subjectPreds[t.S] = map[string]bool{}
		}
		subjectPreds[t.S][t.P] = true
		if objectPreds[t.O] == nil {
			objectPreds[t.O] = map[string]bool{}
		}
		objectPreds[t.O][t.P] = true
		bySP[[2]string{t.S, t.P}]++
		byPO[[2]string{t.P, t.O}]++
	}

	st := &Stats{
		Triples:    len(triples),
		Subjects:   len(bySubject),
		Predicates: len(predicates),
		Objects:    len(byObject),
	}
	// degrees
	var outs, ins []int
	for _, n := range bySubject {
		outs = append(outs, n)
	}
	for _, n := range byObject {
		ins = append(ins, n)
	}
	st.OutDegree = newDistribution(outs)
	st.InDegree = newDistribution(ins)

	// predicate lists
	listCount := map[string]int{}
	for _, set := range subjectPreds {
		ps := make([]string, 0, len(set))
		for p := range set {
			ps = append(ps, p)
		}
		sort.Strings(ps)
		listCount[strings.Join(ps, "\x00")]++
	}
	st.PredicateLists = len(listCount)
	if st.PredicateLists > 0 {
		st.RatioSubjectsPerList = float64(st.Subjects) / float64(st.PredicateLists)
	}
	threshold := st.Subjects / 100
	if threshold < 2 {
		threshold = 2
	}
	shared := 0
	for _, n := range listCount {
		if n >= threshold {
			shared += n
		}
	}
	if st.Subjects > 0 {
		st.SharedListSubjectRate = float64(shared) / float64(st.Subjects)
	}

	// multiplicities
	st.MeanObjectsPerSP = meanCount(bySP)
	st.MeanSubjectsPerPO, st.StdDevSubjectsPerPO = meanStdCount(byPO)

	// predicates per object
	perObject := 0
	for _, set := range objectPreds {
		perObject += len(set)
	}
	if st.Objects > 0 {
		st.MeanPredicatesPerObject = float64(perObject) / float64(st.Objects)
	}

	// overlaps
	st.PSOverlap = overlap(predicates, countKeys(bySubject))
	st.POOverlap = overlap(predicates, countKeys(byObject))
	return st
}

func countKeys(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func overlap(a, b map[string]bool) float64 {
	inter, union := 0, len(b)
	for k := range a {
		if b[k] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func meanCount(m map[[2]string]int) float64 {
	if len(m) == 0 {
		return 0
	}
	sum := 0
	for _, n := range m {
		sum += n
	}
	return float64(sum) / float64(len(m))
}

func meanStdCount(m map[[2]string]int) (mean, std float64) {
	if len(m) == 0 {
		return 0, 0
	}
	// Accumulate in sorted order: the squared deviations are not exactly
	// representable, so summing in map iteration order would make the
	// last bits of the result depend on the (randomized) order — which
	// would break the byte-identity the store-analysis oracle pins.
	counts := make([]int, 0, len(m))
	sum := 0
	for _, n := range m {
		counts = append(counts, n)
		sum += n
	}
	sort.Ints(counts)
	mean = float64(sum) / float64(len(m))
	varSum := 0.0
	for _, n := range counts {
		d := float64(n) - mean
		varSum += d * d
	}
	std = math.Sqrt(varSum / float64(len(m)))
	return mean, std
}
