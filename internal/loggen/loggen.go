// Package loggen generates synthetic SPARQL query logs that stand in for
// the proprietary corpora of Table 2 in "Towards Theory for Real-World
// Data" (DBpedia 2009–2017, LinkedGeoData, BioPortal, BioMed, SWDF, the
// British Museum, and the robotic/organic × OK/timeout Wikidata logs —
// 558M queries in total).
//
// Each source has a generative model calibrated to the paper's reported
// marginals: total/valid/unique counts (Table 2), the triple-count
// distribution (Figure 3), per-feature usage rates (Table 3), query shapes
// (Tables 6 and 7) and property-path types (Table 8). The generator emits
// raw query STRINGS — including syntactically invalid ones and duplicates —
// which the analysis pipeline (internal/core) pushes through the real
// parser and the real analyzers; no analysis result is ever read off the
// calibration constants.
package loggen

import (
	"math/rand"
	"strings"
)

// FeatureRates holds per-query usage probabilities (Table 3's RelativeV
// column interpreted as independent marginals).
type FeatureRates struct {
	Distinct, Limit, Offset, OrderBy, Filter float64
	Optional, Union, Graph, Values           float64
	NotExists, Minus, Exists                 float64
	GroupBy, Count, Having, Agg              float64
	Service, PropertyPath                    float64
}

// Source is one row of Table 2 with its generative model.
type Source struct {
	Name string
	// Paper counts (Table 2).
	PaperTotal, PaperValid, PaperUnique int
	// Wikidata switches the vocabulary and the feature regime.
	Wikidata bool
	// Robotic marks the Wikidata robot logs (PP types from Table 8).
	Robotic bool
	// TripleWeights[i] is the relative weight of queries with i triple
	// patterns, i = 0..11 (the last entry covers 11+, cf. Figure 3).
	TripleWeights []float64
	// BigQueryRate is the probability of a 100–230-triple outlier
	// (Section 9.3 reports such queries in DBpedia15–17 and BioMed13).
	BigQueryRate float64
	Feat         FeatureRates
}

// InvalidRate returns 1 − Valid/Total from the paper's Table 2 counts.
func (s *Source) InvalidRate() float64 {
	if s.PaperTotal == 0 {
		return 0
	}
	return 1 - float64(s.PaperValid)/float64(s.PaperTotal)
}

// UniqueRate returns Unique/Valid from Table 2: the probability that a
// valid query is fresh rather than a replay of an earlier one.
func (s *Source) UniqueRate() float64 {
	if s.PaperValid == 0 {
		return 0
	}
	return float64(s.PaperUnique) / float64(s.PaperValid)
}

// dbpediaTriples approximates the Figure 3 left-group distribution: ~51%
// of queries with ≤ 1 triple pattern, ~66% with ≤ 2.
var dbpediaTriples = []float64{4, 48, 15, 9, 6, 5, 4, 3, 2, 1.5, 1.5, 1}

// wikidataRobotTriples is even more skewed to 1–2 triples.
var wikidataRobotTriples = []float64{3, 56, 18, 9, 5, 3, 2, 1.5, 1, 0.7, 0.5, 0.3}

// wikidataOrganicTriples has visibly more triples (Figure 3: organic
// queries tend to have more triple patterns than robotic ones).
var wikidataOrganicTriples = []float64{2, 28, 20, 14, 10, 8, 6, 4, 3, 2, 1.5, 1.5}

// britMTriples: BritM14 is "a collection of queries with fixed templates"
// (Section 9.3) — few distinct sizes.
var britMTriples = []float64{0, 10, 60, 0, 30, 0, 0, 0, 0, 0, 0, 0}

// bioTriples: BioPortal-style logs dominated by 1-triple lookups.
var bioTriples = []float64{2, 75, 12, 5, 3, 1, 0.7, 0.5, 0.3, 0.2, 0.2, 0.1}

var dbpediaFeat = FeatureRates{
	Distinct: 0.298, Limit: 0.144, Offset: 0.027, OrderBy: 0.011,
	Filter: 0.46, Optional: 0.334, Union: 0.264, Graph: 0.086,
	Values: 0.024, NotExists: 0.008, Minus: 0.007, Exists: 0.0001,
	GroupBy: 0.028, Count: 0.003, Having: 0.0006, Agg: 0.0001,
	Service: 0.00001, PropertyPath: 0.0044,
}

var wikidataFeat = FeatureRates{
	Distinct: 0.077, Limit: 0.185, Offset: 0.067, OrderBy: 0.088,
	Filter: 0.178, Optional: 0.153, Union: 0.092, Graph: 0.0,
	Values: 0.32, NotExists: 0.002, Minus: 0.009, Exists: 0.0005,
	GroupBy: 0.004, Count: 0.0002, Having: 0.0001, Agg: 0.0001,
	Service: 0.084, PropertyPath: 0.39,
}

// Sources returns the 17 log sources of Table 2 with calibrated models.
func Sources() []Source {
	dbp := func(name string, total, valid, unique int) Source {
		return Source{Name: name, PaperTotal: total, PaperValid: valid,
			PaperUnique: unique, TripleWeights: dbpediaTriples, Feat: dbpediaFeat}
	}
	out := []Source{
		dbp("DBpedia9-12", 28651075, 27622233, 13437966),
		dbp("DBpedia13", 5243853, 4819837, 2628000),
		dbp("DBpedia14", 37219788, 33996486, 17217416),
		dbp("DBpedia15", 43478986, 42709781, 13253798),
		dbp("DBpedia16", 15098176, 14687870, 4369755),
		dbp("DBpedia17", 169110041, 164297723, 34440636),
		dbp("LGD13", 1927695, 1531164, 357843),
		dbp("LGD14", 1999961, 1951973, 628640),
		dbp("BioP13", 4627270, 4624449, 687773),
		dbp("BioP14", 26438932, 26404716, 2191151),
		dbp("BioMed13", 883375, 882847, 27030),
		dbp("SWDF13", 13853604, 13670550, 1229759),
		dbp("BritM14", 1555940, 1545643, 135112),
	}
	out[8].TripleWeights = bioTriples // BioP13
	out[9].TripleWeights = bioTriples // BioP14
	out[12].TripleWeights = britMTriples
	out[5].BigQueryRate = 0.00012 // DBpedia17's 105-triple outlier family
	out[3].BigQueryRate = 0.00001
	out[10].BigQueryRate = 0.0001 // BioMed13
	out = append(out,
		Source{Name: "WikiRobot/OK", PaperTotal: 207538912, PaperValid: 207498419,
			PaperUnique: 34527051, Wikidata: true, Robotic: true,
			TripleWeights: wikidataRobotTriples, Feat: wikidataFeat},
		Source{Name: "WikiOrganic/OK", PaperTotal: 676297, PaperValid: 665472,
			PaperUnique: 260723, Wikidata: true,
			TripleWeights: wikidataOrganicTriples, Feat: wikidataFeat},
		Source{Name: "WikiRobot/TO", PaperTotal: 33616, PaperValid: 33465,
			PaperUnique: 3168, Wikidata: true, Robotic: true,
			TripleWeights: wikidataOrganicTriples, Feat: wikidataFeat},
		Source{Name: "WikiOrganic/TO", PaperTotal: 14528, PaperValid: 14087,
			PaperUnique: 8729, Wikidata: true,
			TripleWeights: wikidataOrganicTriples, Feat: wikidataFeat},
	)
	return out
}

// Gen produces query strings for one source.
type Gen struct {
	Source Source
	r      *rand.Rand
	// bag is a weighted replay reservoir: fresh queries enter once per
	// replication weight, so templated robotic queries (a*-style paths,
	// simple lookups) dominate the Valid multiset while the Unique set
	// keeps the fresh distribution — exactly the Valid-vs-Unique skew the
	// paper reports for Table 8 ("the relative percentages differ
	// drastically between the Valid and the Unique queries").
	bag []string
	// freshWeight is set by the query builder per fresh query: a*-family
	// bot templates ≈ 20, other iterated paths ≈ 4, sequence paths ≈ 1,
	// non-path lookups ≈ 7 (matching the per-row Valid/Unique ratios of
	// Table 8 and the 24.03%/38.94% property-path rates of Table 3).
	freshWeight int
}

const bagSize = 8192

// NewGen returns a deterministic generator for the source.
func NewGen(s Source, seed int64) *Gen {
	return &Gen{Source: s, r: rand.New(rand.NewSource(seed))}
}

// Count returns the number of queries this source emits at the given
// scale divisor (e.g. 1000 → 1:1000 of the paper's corpus).
func (g *Gen) Count(scaleDiv int) int {
	n := g.Source.PaperTotal / scaleDiv
	if n < 50 {
		n = 50
	}
	return n
}

// Next emits one raw query string (possibly invalid, possibly a
// duplicate).
func (g *Gen) Next() string {
	// duplicates first: a non-unique valid query replays a bag entry
	if len(g.bag) > 0 && g.r.Float64() > g.Source.UniqueRate() {
		q := g.bag[g.r.Intn(len(g.bag))]
		if g.r.Float64() < g.Source.InvalidRate() {
			return g.corrupt(q)
		}
		return q
	}
	g.freshWeight = 14 // default: plain lookups replay heavily (bot polling)
	q := g.fresh()
	for w := g.freshWeight; w > 0; w-- {
		if len(g.bag) < bagSize {
			g.bag = append(g.bag, q)
		} else {
			g.bag[g.r.Intn(bagSize)] = q
		}
	}
	if g.r.Float64() < g.Source.InvalidRate() {
		return g.corrupt(q)
	}
	return q
}

// corrupt damages a query so it no longer parses.
func (g *Gen) corrupt(q string) string {
	switch g.r.Intn(4) {
	case 0:
		if i := strings.LastIndexByte(q, '}'); i >= 0 {
			return q[:i]
		}
		return q + " {"
	case 1:
		return strings.Replace(q, "WHERE", "WHRE", 1)
	case 2:
		if i := strings.IndexByte(q, '?'); i >= 0 {
			return q[:i+1] + " " + q[i+1:]
		}
		return "?" + q
	default:
		return q + " }"
	}
}
