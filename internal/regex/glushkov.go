package regex

// Linearization of a regular expression: every occurrence of a label gets a
// distinct position 1..n (preorder), and the classical Glushkov functions
// First, Last, Follow are computed over positions. These drive both the
// Glushkov automaton construction (internal/automata) and the
// one-unambiguity test of Brüggemann-Klein & Wood (internal/determinism).

// Linear holds the linearization of an expression.
type Linear struct {
	// Syms[i] is the label of position i+1 (positions are 1-based; position
	// 0 is reserved for the automaton's initial state).
	Syms []string
	// Nullable reports whether ε ∈ L(e).
	Nullable bool
	// First is the set of positions that can begin a word.
	First []int
	// Last is the set of positions that can end a word.
	Last []int
	// Follow[p] is the set of positions that can follow position p.
	Follow map[int][]int
}

// NumPositions returns the number of symbol occurrences in the expression.
func (l *Linear) NumPositions() int { return len(l.Syms) }

// Sym returns the label at position p (1-based).
func (l *Linear) Sym(p int) string { return l.Syms[p-1] }

// Linearize computes the Glushkov position functions of e.
func Linearize(e *Expr) *Linear {
	lz := &linearizer{follow: map[int][]int{}}
	info := lz.visit(e)
	return &Linear{
		Syms:     lz.syms,
		Nullable: info.nullable,
		First:    info.first,
		Last:     info.last,
		Follow:   lz.follow,
	}
}

type nodeInfo struct {
	nullable bool
	empty    bool // L = ∅
	first    []int
	last     []int
}

type linearizer struct {
	syms   []string
	follow map[int][]int
}

func (lz *linearizer) addFollow(from int, tos []int) {
	if len(tos) == 0 {
		return
	}
	lz.follow[from] = appendUnique(lz.follow[from], tos)
}

func appendUnique(dst []int, src []int) []int {
	seen := make(map[int]bool, len(dst))
	for _, x := range dst {
		seen[x] = true
	}
	for _, x := range src {
		if !seen[x] {
			dst = append(dst, x)
			seen[x] = true
		}
	}
	return dst
}

func (lz *linearizer) visit(e *Expr) nodeInfo {
	switch e.Kind {
	case Empty:
		return nodeInfo{empty: true}
	case Epsilon:
		return nodeInfo{nullable: true}
	case Symbol:
		lz.syms = append(lz.syms, e.Sym)
		p := len(lz.syms)
		return nodeInfo{first: []int{p}, last: []int{p}}
	case Union:
		out := nodeInfo{empty: true}
		for _, s := range e.Subs {
			in := lz.visit(s)
			out.nullable = out.nullable || in.nullable
			out.empty = out.empty && in.empty
			out.first = appendUnique(out.first, in.first)
			out.last = appendUnique(out.last, in.last)
		}
		return out
	case Concat:
		out := nodeInfo{nullable: true}
		var infos []nodeInfo
		for _, s := range e.Subs {
			in := lz.visit(s)
			infos = append(infos, in)
			out.empty = out.empty || in.empty
			out.nullable = out.nullable && in.nullable
		}
		if out.empty {
			return nodeInfo{empty: true}
		}
		// First: union of firsts of the longest nullable prefix + the next.
		for _, in := range infos {
			out.first = appendUnique(out.first, in.first)
			if !in.nullable {
				break
			}
		}
		// Last: symmetric from the right.
		for i := len(infos) - 1; i >= 0; i-- {
			out.last = appendUnique(out.last, infos[i].last)
			if !infos[i].nullable {
				break
			}
		}
		// Follow: last(e_i) × first(e_j) for j the next non-skipped factor,
		// allowing intervening nullable factors.
		for i := 0; i < len(infos); i++ {
			for j := i + 1; j < len(infos); j++ {
				for _, p := range infos[i].last {
					lz.addFollow(p, infos[j].first)
				}
				if !infos[j].nullable {
					break
				}
			}
		}
		return out
	case Star, Plus:
		in := lz.visit(e.Sub())
		if in.empty {
			if e.Kind == Star {
				return nodeInfo{nullable: true}
			}
			return nodeInfo{empty: true}
		}
		for _, p := range in.last {
			lz.addFollow(p, in.first)
		}
		return nodeInfo{
			nullable: e.Kind == Star || in.nullable,
			first:    in.first,
			last:     in.last,
		}
	case Opt:
		in := lz.visit(e.Sub())
		if in.empty {
			return nodeInfo{nullable: true}
		}
		in.nullable = true
		return in
	}
	panic("regex: unknown kind")
}
