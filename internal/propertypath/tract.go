package propertypath

import (
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/chare"
	"repro/internal/regex"
)

// ToRegex converts the property path to a regular expression over the
// atom alphabet: a forward atom wdt:P31 becomes the symbol "wdt:P31", an
// inverse atom becomes "^wdt:P31", and a negated property set becomes a
// single fresh symbol (the standard 2RPQ abstraction over the extended
// alphabet Σ ∪ Σ⁻).
func ToRegex(p *Path) *regex.Expr {
	switch p.Kind {
	case IRI:
		return regex.NewSymbol(p.IRI)
	case Inverse:
		inner := ToRegex(p.Sub())
		out := inner.Clone()
		out.Walk(func(x *regex.Expr) {
			if x.Kind == regex.Symbol {
				if strings.HasPrefix(x.Sym, "^") {
					x.Sym = x.Sym[1:]
				} else {
					x.Sym = "^" + x.Sym
				}
			}
		})
		return out
	case NegSet:
		var parts []string
		parts = append(parts, p.Neg...)
		for _, x := range p.NegInv {
			parts = append(parts, "^"+x)
		}
		sort.Strings(parts)
		return regex.NewSymbol("!(" + strings.Join(parts, "|") + ")")
	case Seq:
		subs := make([]*regex.Expr, len(p.Subs))
		for i, s := range p.Subs {
			subs[i] = ToRegex(s)
		}
		return regex.NewConcat(subs...)
	case Alt:
		subs := make([]*regex.Expr, len(p.Subs))
		for i, s := range p.Subs {
			subs[i] = ToRegex(s)
		}
		return regex.NewUnion(subs...)
	case Star:
		return regex.NewStar(ToRegex(p.Sub()))
	case Plus:
		return regex.NewPlus(ToRegex(p.Sub()))
	case Opt:
		return regex.NewOpt(ToRegex(p.Sub()))
	}
	panic("propertypath: unknown kind")
}

// IsSimpleTransitive implements the simple transitive expressions of
// Martens & Trautner (Section 9.6): expressions of the shape
// T1 · A* · T2 (or with A⁺, or with no transitive part at all), where T1
// and T2 are sequences of bounded factors — atoms or disjunctions of
// atoms, possibly with ? — and A is a disjunction of atoms. At most one
// transitive factor is allowed; a*b* is the canonical non-member
// (Section 9.6 reports it as the main reason real paths fall outside the
// class).
func IsSimpleTransitive(p *Path) bool {
	c, ok := chare.Parse(ToRegex(p))
	if !ok {
		return false
	}
	transitive := 0
	for _, f := range c.Factors {
		switch f.Mod {
		case chare.Star, chare.Plus:
			transitive++
		}
	}
	return transitive <= 1
}

// transitionMonoid enumerates the transition monoid of the minimal total
// DFA of e: all functions states→states induced by words, including the
// identity (empty word).
func transitionMonoid(d *automata.DFA) (elements [][]int, finalOf func([]int) bool) {
	n := d.NumStates
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	key := func(f []int) string {
		var b strings.Builder
		for _, x := range f {
			b.WriteByte(byte('0' + x%10))
			b.WriteByte(byte('0' + (x/10)%10))
			b.WriteByte(',')
		}
		return b.String()
	}
	gens := make([][]int, 0, len(d.Alphabet))
	for _, a := range d.Alphabet {
		g := make([]int, n)
		for q := 0; q < n; q++ {
			g[q] = d.Trans[q][a]
		}
		gens = append(gens, g)
	}
	seen := map[string]bool{key(id): true}
	elements = [][]int{id}
	for i := 0; i < len(elements); i++ {
		for _, g := range gens {
			comp := make([]int, n)
			for q := 0; q < n; q++ {
				comp[q] = g[elements[i][q]]
			}
			if k := key(comp); !seen[k] {
				seen[k] = true
				elements = append(elements, comp)
			}
		}
	}
	finalOf = func(f []int) bool { return d.Final[f[0]] }
	return elements, finalOf
}

func compose(f, g []int) []int {
	// (f then g): word uv with f = δ_u, g = δ_v gives q ↦ g[f[q]]
	out := make([]int, len(f))
	for q := range f {
		out[q] = g[f[q]]
	}
	return out
}

// idempotentPower returns e = m^k with e∘e = e (exists for every element
// of a finite monoid).
func idempotentPower(m []int) []int {
	// Iterate m, m², m³, …; the sequence enters a cycle that contains an
	// idempotent, so this terminates within the monoid size.
	cur := append([]int(nil), m...)
	for {
		if equalFn(compose(cur, cur), cur) {
			return cur
		}
		cur = compose(cur, m)
	}
}

func equalFn(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InCtract approximates membership in the tractability class C_tract of
// Bagan, Bonifati & Groz (Section 9.6): the regular languages whose
// simple-path evaluation problem is in PTIME (assuming P ≠ NP). The
// implemented, exactly decidable proxy is *closure under loop pumping* —
// ∃ i ∀ u,v,w: u vⁱ w ∈ L ⇒ u vʲ w ∈ L for all j ≥ i — decided on the
// transition monoid of the minimal DFA: for every element m with
// idempotent power e and all x, y in the monoid, accept(x·e·y) must imply
// accept(x·e·m·y). The proxy separates the canonical hard case (aa)*
// (parity breaks under pumping) from the tractable shapes the log study
// found — a*, ab*, downward-closed languages, bounded languages — and is
// documented as an approximation in DESIGN.md.
func InCtract(p *Path) bool {
	return ctractOfRegex(ToRegex(p))
}

func ctractOfRegex(e *regex.Expr) bool {
	d := automata.ToDFA(e)
	elements, finalOf := transitionMonoid(d)
	for _, m := range elements {
		em := idempotentPower(m)
		eThenM := compose(em, m)
		for _, x := range elements {
			xe := compose(x, em)
			xem := compose(x, eThenM)
			for _, y := range elements {
				if finalOf(compose(xe, y)) && !finalOf(compose(xem, y)) {
					return false
				}
			}
		}
	}
	return true
}

// IsDownwardClosed reports whether L(p) is closed under subsequences
// (deleting edges of a path keeps it matching). Downward-closed languages
// are tractable under both simple-path and trail semantics.
func IsDownwardClosed(p *Path) bool {
	return downwardClosedRegex(ToRegex(p))
}

func downwardClosedRegex(e *regex.Expr) bool {
	// subsequence closure NFA: for every transition q --a--> p also allow
	// skipping a (an ε-move q→p); compare with the original language.
	d := automata.ToDFA(e)
	n := automata.NewNFA(d.NumStates)
	n.Initial = []int{0}
	for q := range d.Final {
		n.Final[q] = true
	}
	// ε-closure via reachability over skip edges, folded into transitions
	skip := make([][]int, d.NumStates)
	for q := 0; q < d.NumStates; q++ {
		for _, p := range d.Trans[q] {
			skip[q] = append(skip[q], p)
		}
	}
	closure := func(q int) []int {
		seen := map[int]bool{q: true}
		stack := []int{q}
		var out []int
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out = append(out, x)
			for _, y := range skip[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return out
	}
	for q := 0; q < d.NumStates; q++ {
		for _, mid := range closure(q) {
			for a, p := range d.Trans[mid] {
				for _, end := range closure(p) {
					n.AddTransition(q, a, end)
				}
			}
			if d.Final[mid] {
				n.Final[q] = true
			}
		}
	}
	n.WithAlphabet(d.Alphabet)
	// downward closed iff closure language ⊆ original (⊇ always holds)
	closed := automata.Determinize(n)
	comp := d.Complement(nil)
	inter := automata.Product(closed, comp, true)
	return inter.IsEmpty()
}

// InTtractApprox is a documented approximation of the trail-semantics
// tractability class T_tract of Martens, Niewerth & Trautner: C_tract is
// a subclass of T_tract, and downward-closed languages are trail-
// tractable; the union of the two covers every property path shape
// occurring in the log study (the paper reports only 93 (14) paths outside
// T_tract in 55M). A full implementation of the MNT characterization is
// out of scope; see DESIGN.md.
func InTtractApprox(p *Path) bool {
	return InCtract(p) || IsDownwardClosed(p)
}
