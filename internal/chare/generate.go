package chare

import "math/rand"

// RandomCHARE generates a random sequential expression with n factors whose
// types are drawn uniformly from allowed, over the given alphabet. It is
// used by the complexity benchmarks that replay the landscape of
// Theorems 4.4 and 4.5 per fragment.
func RandomCHARE(r *rand.Rand, alphabet []string, n int, allowed ...FactorType) *CHARE {
	if len(allowed) == 0 {
		allowed = []FactorType{TypeA, TypeAQuestion, TypeAStar, TypeAPlus,
			TypeDisj, TypeDisjQuestion, TypeDisjStar, TypeDisjPlus}
	}
	c := &CHARE{Factors: make([]Factor, n)}
	for i := 0; i < n; i++ {
		t := allowed[r.Intn(len(allowed))]
		var syms []string
		if t >= TypeDisj {
			k := 2 + r.Intn(len(alphabet)-1)
			perm := r.Perm(len(alphabet))
			for _, p := range perm[:k] {
				syms = append(syms, alphabet[p])
			}
			sortStrings(syms)
		} else {
			syms = []string{alphabet[r.Intn(len(alphabet))]}
		}
		mod := One
		switch t {
		case TypeAQuestion, TypeDisjQuestion:
			mod = Question
		case TypeAStar, TypeDisjStar:
			mod = Star
		case TypeAPlus, TypeDisjPlus:
			mod = Plus
		}
		c.Factors[i] = Factor{Symbols: syms, Mod: mod}
	}
	return c
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
