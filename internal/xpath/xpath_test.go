package xpath

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in    string
		steps int // steps of the first path
	}{
		{"/persons/person", 2},
		{"//h", 2}, // descendant-or-self::node() + child::h
		{"person/name", 2},
		{"/a//b", 3},
		{"a[b]/c", 2},
		{"@id", 1},
		{"a/@id", 2},
		{"ancestor::x", 1},
		{"a/following-sibling::b", 2},
		{".", 1},
		{"..", 1},
		{"a[@x='1' and not(b)]", 1},
		{"a[1]", 1},
		{"a[count(b)=2]", 1},
		{"a | b/c", 1},
		{"a[b or c]", 1},
		{"*[x]/*", 2},
		{"a[.//b]", 1},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if len(e.Paths[0].Steps) != c.steps {
			t.Errorf("Parse(%q): %d steps, want %d (ast %s)", c.in, len(e.Paths[0].Steps), c.steps, e)
		}
	}
	for _, bad := range []string{"", "a[", "a[]", "a]'", "bogus::x", "a['unterminated]", "a[1 and]", "a b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestAxisCounting(t *testing.T) {
	e := MustParse("//a/@id/ancestor::b/c")
	axes := e.Axes()
	if axes[AxisDescendantOrSelf] != 1 || axes[AxisAttribute] != 1 ||
		axes[AxisAncestor] != 1 || axes[AxisChild] != 2 {
		t.Errorf("axes = %v", axes)
	}
}

func TestFragmentClassification(t *testing.T) {
	cases := []struct {
		in                                string
		positive, core, downward, pattern bool
	}{
		{"/a/b[c]//d", true, true, true, true},
		{"/a/b[c and d]", true, true, true, true},
		{"/a/b[c or d]", true, true, true, false},
		{"/a/b[not(c)]", false, true, true, false},
		{"/a/ancestor::b", true, true, false, false},
		{"/a[@x='1']", true, false, true, false},
		{"/a[2]", true, false, true, false},
		{"a | b", true, true, true, false},
		{"/a/b/c", true, true, true, true},
		{"a[b[c]]", true, true, true, true},
	}
	for _, c := range cases {
		e := MustParse(c.in)
		if got := e.IsPositive(); got != c.positive {
			t.Errorf("IsPositive(%q) = %v, want %v", c.in, got, c.positive)
		}
		if got := e.IsCoreXPath(); got != c.core {
			t.Errorf("IsCoreXPath(%q) = %v, want %v", c.in, got, c.core)
		}
		if got := e.IsDownward(); got != c.downward {
			t.Errorf("IsDownward(%q) = %v, want %v", c.in, got, c.downward)
		}
		if got := e.IsTreePattern(); got != c.pattern {
			t.Errorf("IsTreePattern(%q) = %v, want %v", c.in, got, c.pattern)
		}
	}
}

func TestSize(t *testing.T) {
	// path(1) + 3 steps + 1 predicate path(1)+step = 6... exercised via
	// relative ordering rather than absolute numbers.
	small := MustParse("a").Size()
	mid := MustParse("a/b/c").Size()
	big := MustParse("a/b/c[d and e]/f").Size()
	if !(small < mid && mid < big) {
		t.Errorf("sizes not monotone: %d %d %d", small, mid, big)
	}
}

func figure1() *tree.Node {
	return tree.MustParse("persons(person(name, birthplace(city, state, country)), person(name, birthplace(city, state)))")
}

func TestEval(t *testing.T) {
	root := figure1()
	cases := []struct {
		q    string
		want int
	}{
		{"/persons", 1},
		{"/persons/person", 2},
		{"/persons/person/birthplace/country", 1},
		{"//person", 2},
		{"//birthplace[country]", 1},
		{"//person[birthplace/country]/name", 1},
		{"//person[not(birthplace/country)]", 1},
		{"//birthplace[city and state]", 2},
		{"//birthplace[city or missing]", 2},
		{"//*", 12},
		{"/persons//name | //country", 3},
		{"/wrong", 0},
		{"person", 0}, // relative to root context: root has no person child? root IS persons; child person → 2
	}
	// fix the relative-path expectation: context node is the root element,
	// so "person" selects its two person children.
	cases[len(cases)-1].want = 2
	for _, c := range cases {
		got, ok := Eval(MustParse(c.q), root)
		if !ok {
			t.Fatalf("Eval(%q) unsupported", c.q)
		}
		if len(got) != c.want {
			t.Errorf("Eval(%q) = %d nodes, want %d", c.q, len(got), c.want)
		}
	}
	// unsupported fragments are reported, not silently mis-evaluated
	if _, ok := Eval(MustParse("a/ancestor::b"), root); ok {
		t.Error("upward axis should be unsupported")
	}
	if _, ok := Eval(MustParse("a[@x='1']"), root); ok {
		t.Error("comparisons should be unsupported")
	}
}

func TestEvalDocumentOrder(t *testing.T) {
	root := figure1()
	nodes, ok := Eval(MustParse("//city | //name"), root)
	if !ok || len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	wantOrder := []string{"name", "city", "name", "city"}
	for i, n := range nodes {
		if n.Label != wantOrder[i] {
			t.Errorf("node %d = %s, want %s", i, n.Label, wantOrder[i])
		}
	}
}

func TestRunStudy(t *testing.T) {
	g := DefaultGen()
	r := rand.New(rand.NewSource(1))
	corpus := g.Corpus(r, 3000)
	res := RunStudy(corpus)
	if res.ParseErrors > 0 {
		t.Errorf("generator produced %d unparsable queries", res.ParseErrors)
	}
	// Baelde et al.: majority of sizes ≤ 13.
	if med := res.SizeQuantile(0.5); med > 13 {
		t.Errorf("median size = %d, want ≤ 13", med)
	}
	// ... but a heavy tail exists.
	if max := res.SizeQuantile(1.0); max < 40 {
		t.Errorf("max size = %d, want a heavy tail", max)
	}
	// child must dominate axis usage; attribute second.
	if res.AxisUse[AxisChild] <= res.AxisUse[AxisAttribute] {
		t.Errorf("child (%d) should dominate attribute (%d)", res.AxisUse[AxisChild], res.AxisUse[AxisAttribute])
	}
	if res.AxisUse[AxisAttribute] <= res.AxisUse[AxisAncestor] {
		t.Errorf("attribute (%d) should dominate ancestor (%d)", res.AxisUse[AxisAttribute], res.AxisUse[AxisAncestor])
	}
	// Pasqua: tree patterns are a large fraction of downward queries.
	if res.TreePatterns*2 < res.Total {
		t.Errorf("tree patterns = %d of %d, expected a majority", res.TreePatterns, res.Total)
	}
	if res.PowerLawAlpha() <= 1 {
		t.Errorf("power-law alpha = %f", res.PowerLawAlpha())
	}
}

func TestStudyHandlesErrors(t *testing.T) {
	res := RunStudy([]string{"/a/b", "][bogus", "//x"})
	if res.Total != 2 || res.ParseErrors != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestRewriteAndExpressibility(t *testing.T) {
	// double negation: syntactically not positive, expressible after rewrite
	e := MustParse("/a[not(not(b))]")
	if e.IsPositive() {
		t.Fatal("not(not(b)) is syntactically non-positive")
	}
	if !ExpressiblePositive(e) {
		t.Error("not(not(b)) should be expressible in positive XPath")
	}
	// genuine negation stays non-positive
	if ExpressiblePositive(MustParse("/a[not(b)]")) {
		t.Error("not(b) is not positive-expressible by these rewrites")
	}
	// De Morgan exposes inner double negations: not(not(a) or not(b)) = a and b
	dm := MustParse("/x[not(not(a) or not(b))]")
	if !ExpressiblePositive(dm) {
		t.Errorf("De Morgan + double negation should positivize, got %s", Rewrite(dm))
	}
	// tautological predicate [.] is dropped, restoring core membership
	taut := MustParse("/a[.]/b[count(c)=1]")
	_ = taut
	if !ExpressibleCore(MustParse("/a[.]/b")) {
		t.Error("[.] should be dropped")
	}
	if ExpressibleCore(MustParse("/a[2]")) {
		t.Error("positional predicates are beyond Core XPath")
	}
}

func TestRewritePreservesEvaluation(t *testing.T) {
	root := figure1()
	queries := []string{
		"/persons/person[not(not(birthplace))]",
		"//birthplace[not(not(city) or not(state))]",
		"//person[birthplace/country or not(not(name))]",
		"//*[.]",
	}
	for _, qs := range queries {
		e := MustParse(qs)
		r := Rewrite(e)
		got1, ok1 := Eval(e, root)
		got2, ok2 := Eval(r, root)
		if !ok1 || !ok2 {
			continue // fragment not evaluable; rewriting equivalence not checkable here
		}
		if len(got1) != len(got2) {
			t.Errorf("Rewrite changed semantics of %q: %d vs %d nodes", qs, len(got1), len(got2))
		}
	}
}

func TestExpressibilityCoverageGrows(t *testing.T) {
	// On a corpus with double negations, expressible-positive coverage must
	// exceed syntactic-positive coverage (the Section 5 observation).
	queries := []string{
		"/a[not(not(b))]", "/a/b", "/a[not(b)]", "/a[not(not(c) or not(d))]",
	}
	syntactic, expressible := 0, 0
	for _, qs := range queries {
		e := MustParse(qs)
		if e.IsPositive() {
			syntactic++
		}
		if ExpressiblePositive(e) {
			expressible++
		}
	}
	if expressible <= syntactic {
		t.Errorf("expressible (%d) should exceed syntactic (%d)", expressible, syntactic)
	}
}
