package automata

// Context-aware variants of the decision procedures. Containment is
// PSPACE-complete (Section 4.2.2) and the subset/product constructions
// can explode exponentially on adversarial inputs, so a server cannot
// call them on untrusted requests without a way to abort: the *Ctx
// functions check ctx between hot-loop iterations and return ctx.Err()
// once the deadline passes or the caller cancels. The context-free
// entry points (Contains, Determinize, …) are thin wrappers over these
// with context.Background(), whose Err is a constant nil — the
// checkpoint then costs one counter increment plus a predictable
// branch, which benchmarks put well under 5% (BenchmarkContainsCtx).

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/regex"
)

// checkEvery is the number of hot-loop iterations between context
// checks. Iterations are sub-microsecond, so a canceled computation
// stops within tens of microseconds while the steady-state overhead
// stays negligible.
const checkEvery = 256

// canceler amortizes ctx.Err() checks over checkEvery iterations and
// accounts each check to the enclosing span's "checkpoints" counter
// (nil and free when tracing is disabled).
type canceler struct {
	ctx    context.Context
	tick   int
	checks *obs.Counter
}

func newCanceler(ctx context.Context, span *obs.Span) *canceler {
	return &canceler{ctx: ctx, checks: span.Counter("checkpoints")}
}

func (c *canceler) checkpoint() error {
	c.tick++
	if c.tick < checkEvery {
		return nil
	}
	c.tick = 0
	c.checks.Inc()
	return c.ctx.Err()
}

// DeterminizeCtx is Determinize with cooperative cancellation: the
// subset construction — the exponential step of every containment and
// equivalence check — aborts with ctx.Err() once ctx is done. Under a
// traced context it records an "automata.determinize" span whose
// states_expanded counter is the number of subset states it
// materialized — the quantity the 2ⁿ blow-up bound of Section 4.2.1
// is about.
func DeterminizeCtx(ctx context.Context, n *NFA) (*DFA, error) {
	ctx, span := obs.StartSpan(ctx, "automata.determinize")
	defer span.Finish()
	expanded := span.Counter("states_expanded")
	key := func(set []int) string {
		var b strings.Builder
		for i, q := range set {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", q)
		}
		return b.String()
	}
	init := append([]int(nil), n.Initial...)
	sort.Ints(init)
	index := map[string]int{key(init): 0}
	sets := [][]int{init}
	d := NewDFA(1)
	d.Alphabet = append([]string(nil), n.Alphabet...)
	cc := newCanceler(ctx, span)
	for i := 0; i < len(sets); i++ {
		if err := cc.checkpoint(); err != nil {
			return nil, err
		}
		expanded.Inc()
		set := sets[i]
		for _, q := range set {
			if n.Final[q] {
				d.Final[i] = true
				break
			}
		}
		// successor sets per label
		succ := map[string]map[int]bool{}
		for _, q := range set {
			for a, ps := range n.Trans[q] {
				m := succ[a]
				if m == nil {
					m = map[int]bool{}
					succ[a] = m
				}
				for _, p := range ps {
					m[p] = true
				}
			}
		}
		labels := make([]string, 0, len(succ))
		for a := range succ {
			labels = append(labels, a)
		}
		sort.Strings(labels)
		for _, a := range labels {
			m := succ[a]
			next := make([]int, 0, len(m))
			for p := range m {
				next = append(next, p)
			}
			sort.Ints(next)
			k := key(next)
			j, ok := index[k]
			if !ok {
				j = len(sets)
				index[k] = j
				sets = append(sets, next)
				d.Trans = append(d.Trans, map[string]int{})
				d.NumStates++
			}
			d.SetTransition(i, a, j)
		}
	}
	return d, nil
}

// ContainsCtx is Contains with cooperative cancellation. It runs the
// antichain engine (see antichain.go): lazy, interned-bitset subset
// construction with subsumption pruning. ContainsClassicCtx retains the
// eager textbook construction as the differential reference. On
// cancellation the boolean is meaningless and the error is ctx.Err().
func ContainsCtx(ctx context.Context, e1, e2 *regex.Expr) (bool, error) {
	return containsAntichainCtx(ctx, Glushkov(e1), Glushkov(e2))
}

// NFAContainsCtx is NFAContains with cooperative cancellation, on the
// antichain engine.
func NFAContainsCtx(ctx context.Context, n1 *NFA, e2 *regex.Expr) (bool, error) {
	return containsAntichainCtx(ctx, n1, Glushkov(e2))
}

// nfaContainsClassicCtx is the classic engine: eager determinization of
// e2, complementation over the union alphabet, and a DFS for a product
// state witnessing L(n1) \ L(e2) ≠ ∅.
func nfaContainsClassicCtx(ctx context.Context, n1 *NFA, e2 *regex.Expr) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "automata.contains_classic")
	defer span.Finish()
	alpha := unionAlpha(n1.Alphabet, e2.Alphabet())
	det, err := DeterminizeCtx(ctx, Glushkov(e2))
	if err != nil {
		return false, err
	}
	comp := det.Complement(alpha)
	type pair struct{ q, s int }
	seen := map[pair]bool{}
	var stack []pair
	for _, q := range n1.Initial {
		p := pair{q, 0}
		seen[p] = true
		stack = append(stack, p)
	}
	productStates := span.Counter("product_states")
	cc := newCanceler(ctx, span)
	for len(stack) > 0 {
		if err := cc.checkpoint(); err != nil {
			return false, err
		}
		productStates.Inc()
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n1.Final[p.q] && comp.Final[p.s] {
			return false, nil // witness in L(n1) \ L(e2)
		}
		for a, succs := range n1.Trans[p.q] {
			s2, ok := comp.Trans[p.s][a]
			if !ok {
				continue
			}
			for _, q2 := range succs {
				np := pair{q2, s2}
				if !seen[np] {
					seen[np] = true
					stack = append(stack, np)
				}
			}
		}
	}
	return true, nil
}

// EquivalentCtx is Equivalent with cooperative cancellation.
func EquivalentCtx(ctx context.Context, e1, e2 *regex.Expr) (bool, error) {
	ok, err := ContainsCtx(ctx, e1, e2)
	if err != nil || !ok {
		return ok, err
	}
	return ContainsCtx(ctx, e2, e1)
}

// IntersectionWitnessCtx is IntersectionWitness with cooperative
// cancellation of the on-the-fly product BFS.
func IntersectionWitnessCtx(ctx context.Context, es ...*regex.Expr) ([]string, bool, error) {
	if len(es) == 0 {
		return []string{}, true, nil
	}
	ctx, span := obs.StartSpan(ctx, "automata.intersection")
	defer span.Finish()
	tuples := span.Counter("tuples_expanded")
	nfas := make([]*NFA, len(es))
	for i, e := range es {
		nfas[i] = Glushkov(e)
	}
	key := func(tuple [][]int) string {
		var b strings.Builder
		for i, set := range tuple {
			if i > 0 {
				b.WriteByte(';')
			}
			for j, q := range set {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", q)
			}
		}
		return b.String()
	}
	// BFS over tuples of state sets (determinized on the fly per component).
	start := make([][]int, len(nfas))
	for i, n := range nfas {
		s := append([]int(nil), n.Initial...)
		sort.Ints(s)
		start[i] = s
	}
	allFinal := func(tuple [][]int) bool {
		for i, set := range tuple {
			ok := false
			for _, q := range set {
				if nfas[i].Final[q] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	// BFS items record only a parent index and the label that reached
	// them; the witness word is reconstructed once at the end. The old
	// shape — `queue = queue[1:]` plus a full word copy per item — both
	// pinned the queue's backing array for the whole search and made
	// total allocation quadratic in the witness length
	// (TestIntersectionWitnessAllocBound is the regression test).
	type item struct {
		tuple  [][]int
		parent int
		label  string
	}
	seen := map[string]bool{key(start): true}
	items := []item{{start, -1, ""}}
	if allFinal(start) {
		return []string{}, true, nil
	}
	witness := func(i int) []string {
		var n int
		for j := i; j > 0; j = items[j].parent {
			n++
		}
		w := make([]string, n)
		for j := i; j > 0; j = items[j].parent {
			n--
			w[n] = items[j].label
		}
		return w
	}
	// candidate labels: intersection of alphabets
	labels := nfas[0].Alphabet
	for _, n := range nfas[1:] {
		labels = intersectSorted(labels, n.Alphabet)
	}
	cc := newCanceler(ctx, span)
	for head := 0; head < len(items); head++ {
		tuple := items[head].tuple
		tuples.Inc()
		for _, a := range labels {
			if err := cc.checkpoint(); err != nil {
				return nil, false, err
			}
			next := make([][]int, len(nfas))
			dead := false
			for i, set := range tuple {
				m := map[int]bool{}
				for _, q := range set {
					for _, p := range nfas[i].Trans[q][a] {
						m[p] = true
					}
				}
				if len(m) == 0 {
					dead = true
					break
				}
				s := make([]int, 0, len(m))
				for p := range m {
					s = append(s, p)
				}
				sort.Ints(s)
				next[i] = s
			}
			if dead {
				continue
			}
			k := key(next)
			if seen[k] {
				continue
			}
			seen[k] = true
			items = append(items, item{next, head, a})
			if allFinal(next) {
				return witness(len(items) - 1), true, nil
			}
		}
	}
	return nil, false, nil
}
