package sparqlalg

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func testGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.Add("ex:alice", "foaf:knows", "ex:bob")
	g.Add("ex:bob", "foaf:knows", "ex:carol")
	g.Add("ex:alice", "foaf:name", "Alice")
	g.Add("ex:bob", "foaf:name", "Bob")
	g.Add("ex:alice", "foaf:age", "30")
	g.Add("site1", "wdt:P31", "cls")
	g.Add("cls", "wdt:P279", "wd:Q839954")
	return g
}

func TestEvalBGP(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse("SELECT ?x ?y WHERE { ?x foaf:knows ?y }")
	sols, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d solutions: %v", len(sols), sols)
	}
	// join
	q2 := sparql.MustParse("SELECT ?n WHERE { ?x foaf:knows ?y . ?y foaf:name ?n }")
	sols2, err := Eval(g, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols2) != 1 || sols2[0]["n"] != "Bob" {
		t.Fatalf("join = %v", sols2)
	}
}

func TestEvalOptionalSemantics(t *testing.T) {
	g := testGraph()
	// carol has no name: OPTIONAL keeps the row unbound.
	q := sparql.MustParse("SELECT ?y ?n WHERE { ?x foaf:knows ?y OPTIONAL { ?y foaf:name ?n } }")
	sols, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("solutions = %v", sols)
	}
	foundUnbound := false
	for _, s := range sols {
		if s["y"] == "ex:carol" {
			if _, ok := s["n"]; ok {
				t.Error("carol should have unbound ?n")
			}
			foundUnbound = true
		}
	}
	if !foundUnbound {
		t.Error("missing carol row")
	}
}

func TestEvalFilterUnionAsk(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse("SELECT ?x WHERE { ?x foaf:age ?a FILTER(?a > 25) }")
	sols, _ := Eval(g, q)
	if len(sols) != 1 || sols[0]["x"] != "ex:alice" {
		t.Errorf("filter = %v", sols)
	}
	q2 := sparql.MustParse("SELECT ?x WHERE { { ?x foaf:name \"Alice\" } UNION { ?x foaf:name \"Bob\" } }")
	sols2, _ := Eval(g, q2)
	if len(sols2) != 2 {
		t.Errorf("union = %v", sols2)
	}
	ask := sparql.MustParse("ASK { ex:alice foaf:knows ex:bob }")
	sols3, _ := Eval(g, ask)
	if len(sols3) != 1 {
		t.Error("ASK should succeed")
	}
	ask2 := sparql.MustParse("ASK { ex:bob foaf:knows ex:alice }")
	sols4, _ := Eval(g, ask2)
	if len(sols4) != 0 {
		t.Error("ASK should fail")
	}
}

func TestEvalPropertyPath(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse("SELECT ?s WHERE { ?s wdt:P31/wdt:P279* wd:Q839954 }")
	sols, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["s"] != "site1" {
		t.Fatalf("path solutions = %v", sols)
	}
	// transitive knows
	q2 := sparql.MustParse("SELECT ?y WHERE { ex:alice foaf:knows+ ?y }")
	sols2, _ := Eval(g, q2)
	if len(sols2) != 2 {
		t.Errorf("knows+ = %v", sols2)
	}
}

func TestEvalModifiers(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse("SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 2")
	sols, _ := Eval(g, q)
	if len(sols) != 2 {
		t.Errorf("limit+distinct = %v", sols)
	}
	q2 := sparql.MustParse("SELECT ?p WHERE { ?s ?p ?o } OFFSET 100")
	sols2, _ := Eval(g, q2)
	if len(sols2) != 0 {
		t.Errorf("offset = %v", sols2)
	}
}

func TestEvalExistsAndMinus(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse("SELECT ?x WHERE { ?x foaf:name ?n FILTER EXISTS { ?x foaf:age ?a } }")
	sols, _ := Eval(g, q)
	if len(sols) != 1 || sols[0]["x"] != "ex:alice" {
		t.Errorf("exists = %v", sols)
	}
	q2 := sparql.MustParse("SELECT ?x WHERE { ?x foaf:name ?n MINUS { ?x foaf:age ?a } }")
	sols2, _ := Eval(g, q2)
	if len(sols2) != 1 || sols2[0]["x"] != "ex:bob" {
		t.Errorf("minus = %v", sols2)
	}
}

func TestIsAnswer(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse("SELECT ?x ?y WHERE { ?x foaf:knows ?y }")
	yes, err := IsAnswer(g, q, Solution{"x": "ex:alice", "y": "ex:bob"})
	if err != nil || !yes {
		t.Errorf("IsAnswer = %v, %v", yes, err)
	}
	no, _ := IsAnswer(g, q, Solution{"x": "ex:bob", "y": "ex:alice"})
	if no {
		t.Error("reversed pair should not be an answer")
	}
}

func TestWellDesigned(t *testing.T) {
	cases := []struct {
		src string
		afo bool
		wd  bool
	}{
		// classic well-designed: optional variable ?n used nowhere else
		{"SELECT * WHERE { ?x foaf:knows ?y OPTIONAL { ?y foaf:name ?n } }", true, true},
		// NOT well-designed: ?n occurs in the optional and outside,
		// but not in the required part of the optional's scope
		{"SELECT * WHERE { ?x foaf:knows ?y OPTIONAL { ?y foaf:name ?n } . ?n foaf:age ?a }", true, false},
		// well-designed: the shared variable also occurs in P1
		{"SELECT * WHERE { ?x foaf:knows ?y . ?y foaf:name ?n OPTIONAL { ?y foaf:mbox ?m } }", true, true},
		// nested optionals, well-designed
		{"SELECT * WHERE { ?x a :P OPTIONAL { ?x :b ?y OPTIONAL { ?y :c ?z } } }", true, true},
		// outside the fragment
		{"SELECT * WHERE { { ?x a :P } UNION { ?x a :Q } }", false, false},
	}
	for _, c := range cases {
		q := sparql.MustParse(c.src)
		if got := UsesOnlyAFO(q); got != c.afo {
			t.Errorf("UsesOnlyAFO(%q) = %v, want %v", c.src, got, c.afo)
		}
		if got := IsWellDesigned(q); got != c.wd {
			t.Errorf("IsWellDesigned(%q) = %v, want %v", c.src, got, c.wd)
		}
	}
}

func TestWellDesignedStats(t *testing.T) {
	var st WellDesignedStats
	st.Observe(sparql.MustParse("SELECT * WHERE { ?x foaf:knows ?y OPTIONAL { ?y foaf:name ?n } }"))
	st.Observe(sparql.MustParse("SELECT * WHERE { ?x foaf:knows ?y OPTIONAL { ?y foaf:name ?n } . ?n foaf:age ?a }"))
	st.Observe(sparql.MustParse("SELECT * WHERE { { ?x a :P } UNION { ?x a :Q } }"))
	if st.AFO != 2 || st.WellDesigned != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEvalValues(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse("SELECT ?x ?n WHERE { VALUES ?x { ex:alice ex:carol } ?x foaf:name ?n }")
	sols, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// carol has no name, so only alice joins
	if len(sols) != 1 || sols[0]["x"] != "ex:alice" || sols[0]["n"] != "Alice" {
		t.Errorf("values join = %v", sols)
	}
	// multi-variable VALUES with UNDEF
	q2 := sparql.MustParse("SELECT * WHERE { VALUES (?x ?y) { (ex:alice ex:bob) (ex:bob UNDEF) } ?x foaf:knows ?y }")
	sols2, err := Eval(g, q2)
	if err != nil {
		t.Fatal(err)
	}
	// row 1 pins both and matches; row 2 leaves ?y free → bob knows carol
	if len(sols2) != 2 {
		t.Errorf("values+undef = %v", sols2)
	}
}

func TestUnionOfWellDesigned(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT * WHERE { { ?x a :P OPTIONAL { ?x :n ?n } } UNION { ?x a :Q } }", true},
		{"SELECT * WHERE { ?x a :P OPTIONAL { ?x :n ?n } }", true},
		// UNION nested under OPTIONAL is not top-level
		{"SELECT * WHERE { ?x a :P OPTIONAL { { ?x :n ?n } UNION { ?x :m ?n } } }", false},
		// a non-well-designed branch poisons the union
		{"SELECT * WHERE { { ?x :k ?y OPTIONAL { ?y :n ?n } . ?n :a ?b } UNION { ?x a :Q } }", false},
	}
	for _, c := range cases {
		q := sparql.MustParse(c.src)
		if got := IsUnionOfWellDesigned(q); got != c.want {
			t.Errorf("IsUnionOfWellDesigned(%q) = %v, want %v", c.src, got, c.want)
		}
		if got := IsWellBehaved(q); got != c.want {
			t.Errorf("IsWellBehaved(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}
