package xpath

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// This file replays the XPath corpus studies of Section 5: Baelde, Lick &
// Schmitz (21.1k queries: power-law size distribution, majority of size
// ≤ 13 but 256 queries of size ≥ 100; axis usage child 31.1%, attribute
// 17.1%, descendant(-or-self) 3.6%, ancestor(-or-self) 3.6%; fragment
// coverage ≈25–30% syntactic) and Pasqua (95k expressions, over 90% tree
// patterns).

// StudyResult aggregates the per-corpus statistics.
type StudyResult struct {
	Total       int
	ParseErrors int
	// Sizes is the multiset of syntax-tree sizes.
	Sizes []int
	// AxisUse counts the queries (not occurrences) using each axis.
	AxisUse map[Axis]int
	// UsesAxes counts queries with at least one non-child-abbreviated axis
	// occurrence (the study's "axes were used in 46.5%").
	UsesAxes int
	// Fragment membership counts (syntactic).
	Positive, Core, Downward, TreePatterns int
}

// SizeQuantile returns the q-quantile of the size distribution.
func (r *StudyResult) SizeQuantile(q float64) int {
	if len(r.Sizes) == 0 {
		return 0
	}
	s := append([]int(nil), r.Sizes...)
	sort.Ints(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// RunStudy parses and classifies a corpus of XPath strings.
func RunStudy(queries []string) *StudyResult {
	res := &StudyResult{AxisUse: map[Axis]int{}}
	for _, q := range queries {
		e, err := Parse(q)
		if err != nil {
			res.ParseErrors++
			continue
		}
		res.Total++
		res.Sizes = append(res.Sizes, e.Size())
		axes := e.Axes()
		usesBeyondChild := false
		for a, n := range axes {
			if n > 0 {
				res.AxisUse[a]++
				if a != AxisChild && a != AxisDescendantOrSelf {
					usesBeyondChild = true
				}
			}
		}
		// "//" desugars to descendant-or-self; the study counts axis usage
		// from the explicit syntax, which we approximate by counting any
		// query with an attribute or upward/sideways axis, or an explicit
		// descendant step.
		if usesBeyondChild {
			res.UsesAxes++
		}
		if e.IsPositive() {
			res.Positive++
		}
		if e.IsCoreXPath() {
			res.Core++
		}
		if e.IsDownward() {
			res.Downward++
		}
		if e.IsTreePattern() {
			res.TreePatterns++
		}
	}
	return res
}

// PowerLawAlpha estimates the exponent of a discrete power law fitted to
// the size distribution (maximum-likelihood, xmin = 1):
// α = 1 + n / Σ ln(x_i / (xmin − 1/2)).
func (r *StudyResult) PowerLawAlpha() float64 {
	if len(r.Sizes) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, x := range r.Sizes {
		if x >= 1 {
			sum += math.Log(float64(x) / 0.5)
			n++
		}
	}
	if sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// Gen generates a synthetic XPath corpus calibrated to the Section 5
// studies: power-law sizes, child/attribute-dominated axis mix, and a
// majority of tree patterns.
type Gen struct {
	Labels []string
	// TailProb controls the power-law size tail.
	TailProb float64
}

// DefaultGen returns the calibrated generator.
func DefaultGen() *Gen {
	return &Gen{
		Labels:   []string{"person", "name", "birthplace", "city", "state", "item", "title", "author", "entry", "a", "b", "div"},
		TailProb: 0.25,
	}
}

// Query emits one XPath string.
func (g *Gen) Query(r *rand.Rand) string {
	// power-law-ish length: 1 + geometric with heavy tail
	steps := 1
	for r.Float64() < 0.55 {
		steps++
	}
	if r.Float64() < 0.02 {
		steps += 20 + r.Intn(80) // the long tail (size ≥ 100 for a few queries)
	}
	var b strings.Builder
	if r.Float64() < 0.7 {
		b.WriteByte('/')
	}
	for i := 0; i < steps; i++ {
		if i > 0 {
			b.WriteByte('/')
		}
		switch x := r.Float64(); {
		case x < 0.04:
			b.WriteString("/") // '//' step
			b.WriteString(g.label(r))
		case x < 0.21:
			b.WriteByte('@')
			b.WriteString(g.label(r))
		case x < 0.225:
			fmt.Fprintf(&b, "ancestor::%s", g.label(r))
		case x < 0.24:
			fmt.Fprintf(&b, "following-sibling::%s", g.label(r))
		case x < 0.30:
			b.WriteString("*")
		default:
			b.WriteString(g.label(r))
		}
		// predicates: mostly path-existence (tree patterns), occasionally
		// comparisons or negation
		if r.Float64() < 0.25 {
			switch x := r.Float64(); {
			case x < 0.85:
				fmt.Fprintf(&b, "[%s]", g.label(r))
			case x < 0.91:
				fmt.Fprintf(&b, "[@%s='%d']", g.label(r), r.Intn(10))
			case x < 0.94:
				fmt.Fprintf(&b, "[not(%s)]", g.label(r))
			case x < 0.97:
				fmt.Fprintf(&b, "[%s or %s]", g.label(r), g.label(r))
			default:
				fmt.Fprintf(&b, "[%d]", 1+r.Intn(5))
			}
		}
	}
	return b.String()
}

func (g *Gen) label(r *rand.Rand) string {
	return g.Labels[r.Intn(len(g.Labels))]
}

// Corpus emits n queries.
func (g *Gen) Corpus(r *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Query(r)
	}
	return out
}
