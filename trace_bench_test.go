package repro

import (
	"context"
	"testing"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/regex"
)

// traceBenchInstance is a containment pair the lazy antichain engine
// must fully explore (~1.5k interned subset-states, no early
// counterexample exit) — long enough that the per-state instrumentation
// cost is what the benchmark measures, not fixed setup.
func traceBenchInstance() (*regex.Expr, *regex.Expr) {
	hard := regex.MustParse(automata.AntichainHardExpr(8))
	return hard, hard
}

// BenchmarkTraceDisabledOverhead bounds the cost of the observability
// instrumentation on the two hot loops it touches. The "untraced" runs
// go through the exact instrumented code paths with no span in the
// context — the nil-span fast path the acceptance criterion caps at
// < 5% overhead (compare untraced ns/op against the pre-instrumentation
// numbers of the same benchmarks, or against "traced" to see the full
// cost of enabling). The untraced runs must also report 0 extra
// allocs/op from tracing: StartSpan returns the context unchanged and
// every Counter is nil.
func BenchmarkTraceDisabledOverhead(b *testing.B) {
	e1, e2 := traceBenchInstance()
	b.Run("containment/untraced", func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if ok, err := automata.ContainsCtx(ctx, e1, e2); err != nil || !ok {
				b.Fatalf("ContainsCtx = %v, %v", ok, err)
			}
		}
	})
	b.Run("containment/traced", func(b *testing.B) {
		b.ReportAllocs()
		tr := &obs.Tracer{}
		for i := 0; i < b.N; i++ {
			ctx, root := tr.StartRoot(context.Background(), "bench")
			if ok, err := automata.ContainsCtx(ctx, e1, e2); err != nil || !ok {
				b.Fatalf("ContainsCtx = %v, %v", ok, err)
			}
			root.Finish()
		}
	})
	cfg := core.Config{Workers: 1, ScaleDiv: benchScale, Seed: 1}
	b.Run("ingest/untraced", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			core.RunLogStudySequentialCtx(ctx, cfg)
		}
	})
	b.Run("ingest/traced", func(b *testing.B) {
		tr := &obs.Tracer{}
		for i := 0; i < b.N; i++ {
			ctx, root := tr.StartRoot(context.Background(), "bench")
			core.RunLogStudySequentialCtx(ctx, cfg)
			root.Finish()
		}
	})
}

// TestTraceDisabledOverheadBudget is the testable half of the < 5%
// claim: the tracing primitives on the disabled path — exactly what the
// instrumented hot loops execute when no span is in the context — are
// allocation-free outright.
func TestTraceDisabledOverheadBudget(t *testing.T) {
	ctx := context.Background()
	var span *obs.Span
	c := span.Counter("x")
	if allocs := testing.AllocsPerRun(100, func() {
		ctx2, s := obs.StartSpan(ctx, "noop")
		if ctx2 != ctx || s != nil {
			t.Fatal("disabled StartSpan must return ctx unchanged and nil span")
		}
		c.Inc()
		s.Count("y", 1)
		s.SetAttr("k", "v")
		s.Finish()
	}); allocs != 0 {
		t.Fatalf("disabled-path tracing allocates %v per op, want 0", allocs)
	}
}
